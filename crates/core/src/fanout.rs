//! Work-stealing cell fan-out shared by every grid-shaped evaluation.
//!
//! The suite runner, the admission grid and the load sweeps all face the
//! same shape of work: `total` independent cells whose costs are wildly
//! uneven (one budgetless EX-MEM cell can outlast hundreds of heuristic
//! cells). Static chunking stalls whole chunks behind one hard cell;
//! [`for_each_cell`] instead lets worker threads steal individual cell
//! indices off a shared atomic counter, so the wall clock is bounded by
//! the slowest *single* cell, not the slowest chunk.
//!
//! Results come back in cell order regardless of which worker ran which
//! cell, and `threads == 1` degenerates to a plain in-order loop — serial
//! and parallel runs produce identical result vectors.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `run(i)` for every `i in 0..total` across `threads` OS threads via
/// a shared work index, returning the results in index order.
///
/// `run` must be independent per cell (no cross-cell ordering is
/// guaranteed beyond the returned vector's order). With `threads == 1`
/// (or fewer than two cells) the cells run serially in order on the
/// calling thread.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
///
/// # Examples
///
/// ```
/// use amrm_core::fanout::for_each_cell;
///
/// let squares = for_each_cell(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn for_each_cell<T, F>(total: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || total < 2 {
        return (0..total).map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let mut flat: Vec<Option<T>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(total))
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        produced.push((i, run(i)));
                    }
                    produced
                })
            })
            .collect();
        for worker in workers {
            for (i, result) in worker.join().expect("worker panicked") {
                flat[i] = Some(result);
            }
        }
    });
    flat.into_iter()
        .map(|r| r.expect("all cells filled by workers"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let serial = for_each_cell(23, 1, |i| i * 3);
        let parallel = for_each_cell(23, 7, |i| i * 3);
        assert_eq!(serial, parallel);
        assert_eq!(serial[22], 66);
    }

    #[test]
    fn empty_and_singleton_totals_work() {
        assert_eq!(for_each_cell(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(for_each_cell(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_cell_costs_are_balanced() {
        // Cells that sleep by index: stealing keeps every worker busy and
        // the results still come back in order.
        let out = for_each_cell(8, 4, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let _ = for_each_cell(3, 0, |i| i);
    }
}
