//! Batched-admission policies: *when* queued requests reach the scheduler.
//!
//! The paper's runtime manager is activated once per arriving request, but
//! the registry makes the scheduling algorithm a plug-in — and the same
//! holds for the admission discipline. An [`AdmissionPolicy`] decides how
//! arrivals are grouped into scheduler activations: one at a time (the
//! paper's discipline), in batches of a fixed size, or within a gathering
//! time window. The `amrm-sim` event kernel consults the policy at every
//! arrival; [`RuntimeManager::submit_batch`](crate::RuntimeManager::submit_batch)
//! then admits or rejects the flushed batch atomically.

/// What the simulation kernel should do with the admission queue after a
/// new request has been appended to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDirective {
    /// Flush the whole queue to the scheduler now.
    Flush,
    /// Keep queueing; no timer is involved (a later arrival or the end of
    /// the stream will trigger the flush).
    Defer,
    /// Keep queueing and flush when the batching window expires at the
    /// given absolute time (only emitted when a new window opens).
    OpenWindow {
        /// Absolute expiry time of the freshly opened window.
        expiry: f64,
    },
}

/// A batched-admission policy: decides how many queued requests reach the
/// scheduler in one activation.
///
/// * [`Immediate`](AdmissionPolicy::Immediate) — the paper's discipline:
///   every request triggers its own scheduler activation on arrival.
/// * [`BatchK`](AdmissionPolicy::BatchK) — gather `k` requests and admit
///   them in one activation (leftovers flush at the end of the stream).
///   `BatchK(1)` is exactly the per-request discipline.
/// * [`WindowTau`](AdmissionPolicy::WindowTau) — the first queued arrival
///   opens a gathering window of length `τ`; everything that arrives
///   before the window expires is admitted together. `WindowTau(0.0)`
///   degenerates to per-request admission (up to simultaneous arrivals,
///   which are grouped).
///
/// # Examples
///
/// ```
/// use amrm_core::{AdmissionDirective, AdmissionPolicy};
///
/// let policy = AdmissionPolicy::BatchK(3);
/// assert_eq!(policy.on_arrival(1, 0.0), AdmissionDirective::Defer);
/// assert_eq!(policy.on_arrival(3, 0.5), AdmissionDirective::Flush);
/// assert_eq!(policy.label(), "BatchK(3)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// One scheduler activation per request, at its arrival.
    Immediate,
    /// Flush once the queue holds this many requests.
    BatchK(usize),
    /// Flush a gathering window this long after its first queued arrival.
    WindowTau(f64),
}

impl AdmissionPolicy {
    /// Checks the policy's invariants: a batch size of at least one, a
    /// finite non-negative window.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AdmissionPolicy::Immediate => Ok(()),
            AdmissionPolicy::BatchK(0) => {
                Err("BatchK needs a batch size of at least 1".to_string())
            }
            AdmissionPolicy::BatchK(_) => Ok(()),
            AdmissionPolicy::WindowTau(tau) if !tau.is_finite() || tau < 0.0 => {
                Err(format!("WindowTau needs a finite window ≥ 0, got {tau}"))
            }
            AdmissionPolicy::WindowTau(_) => Ok(()),
        }
    }

    /// The directive for a queue of `queue_len` requests (the newest just
    /// appended) at time `now`, assuming no window is currently open —
    /// the kernel tracks open windows itself and only asks on arrivals.
    pub fn on_arrival(&self, queue_len: usize, now: f64) -> AdmissionDirective {
        match *self {
            AdmissionPolicy::Immediate => AdmissionDirective::Flush,
            AdmissionPolicy::BatchK(k) if queue_len >= k => AdmissionDirective::Flush,
            AdmissionPolicy::BatchK(_) => AdmissionDirective::Defer,
            AdmissionPolicy::WindowTau(tau) if queue_len == 1 => {
                AdmissionDirective::OpenWindow { expiry: now + tau }
            }
            AdmissionPolicy::WindowTau(_) => AdmissionDirective::Defer,
        }
    }

    /// Whether leftovers must be flushed when the request stream ends
    /// (`BatchK` would otherwise starve a partial final batch; window
    /// policies flush at their expiry instead).
    pub fn flush_at_stream_end(&self) -> bool {
        matches!(self, AdmissionPolicy::BatchK(_))
    }

    /// A short stable label (`"Immediate"`, `"BatchK(4)"`,
    /// `"WindowTau(2)"`) — the key used by reports and the perf
    /// baseline. The window is rendered at full precision so distinct
    /// policies never share a label.
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Immediate => "Immediate".to_string(),
            AdmissionPolicy::BatchK(k) => format!("BatchK({k})"),
            AdmissionPolicy::WindowTau(tau) => format!("WindowTau({tau})"),
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_always_flushes() {
        for n in 1..5 {
            assert_eq!(
                AdmissionPolicy::Immediate.on_arrival(n, 1.0),
                AdmissionDirective::Flush
            );
        }
    }

    #[test]
    fn batch_k_flushes_at_k() {
        let p = AdmissionPolicy::BatchK(2);
        assert_eq!(p.on_arrival(1, 0.0), AdmissionDirective::Defer);
        assert_eq!(p.on_arrival(2, 0.0), AdmissionDirective::Flush);
        assert_eq!(p.on_arrival(3, 0.0), AdmissionDirective::Flush);
        assert!(p.flush_at_stream_end());
    }

    #[test]
    fn batch_one_is_per_request() {
        assert_eq!(
            AdmissionPolicy::BatchK(1).on_arrival(1, 7.0),
            AdmissionDirective::Flush
        );
    }

    #[test]
    fn window_opens_once_per_queue() {
        let p = AdmissionPolicy::WindowTau(2.5);
        assert_eq!(
            p.on_arrival(1, 4.0),
            AdmissionDirective::OpenWindow { expiry: 6.5 }
        );
        assert_eq!(p.on_arrival(2, 5.0), AdmissionDirective::Defer);
        assert!(!p.flush_at_stream_end());
    }

    #[test]
    fn validation_rejects_degenerate_policies() {
        assert!(AdmissionPolicy::Immediate.validate().is_ok());
        assert!(AdmissionPolicy::BatchK(0).validate().is_err());
        assert!(AdmissionPolicy::BatchK(4).validate().is_ok());
        assert!(AdmissionPolicy::WindowTau(-1.0).validate().is_err());
        assert!(AdmissionPolicy::WindowTau(f64::NAN).validate().is_err());
        assert!(AdmissionPolicy::WindowTau(0.0).validate().is_ok());
    }

    #[test]
    fn labels_are_stable_and_injective() {
        assert_eq!(AdmissionPolicy::Immediate.label(), "Immediate");
        assert_eq!(AdmissionPolicy::BatchK(4).label(), "BatchK(4)");
        assert_eq!(AdmissionPolicy::WindowTau(2.0).label(), "WindowTau(2)");
        assert_eq!(format!("{}", AdmissionPolicy::BatchK(2)), "BatchK(2)");
        // Full precision: close-but-distinct windows stay distinguishable.
        assert_ne!(
            AdmissionPolicy::WindowTau(0.25).label(),
            AdmissionPolicy::WindowTau(0.251).label()
        );
    }
}
