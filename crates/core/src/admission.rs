//! Batched-admission policies: *when* queued requests reach the scheduler.
//!
//! The paper's runtime manager is activated once per arriving request, but
//! the registry makes the scheduling algorithm a plug-in — and the same
//! holds for the admission discipline. An [`AdmissionPolicy`] decides how
//! arrivals are grouped into scheduler activations: one at a time (the
//! paper's discipline), in fixed batches or windows, or *adaptively*,
//! sized from the online telemetry the `amrm-sim` kernel records
//! ([`TelemetrySnapshot`]). The kernel consults the policy at every
//! arrival; [`RuntimeManager::submit_batch`](crate::RuntimeManager::submit_batch)
//! then admits or rejects the flushed batch atomically.
//!
//! `AdmissionPolicy` is a **trait**: implement it (plus
//! [`label`](AdmissionPolicy::label)) and every consumer — the event
//! kernel, `load_sweep_with`, the `repro admission` grid — picks the
//! policy up unchanged. Stateless fixed policies ([`Immediate`],
//! [`BatchK`], [`WindowTau`]) ignore the snapshot; the stateful
//! [`AdaptiveBatch`] and [`SlackAware`] close the feedback loop from the
//! telemetry series. Everything a policy can observe is simulated time
//! and state, so adaptive decisions stay deterministic per seed.

pub use amrm_metrics::TelemetrySnapshot;

/// What the simulation kernel should do with the admission queue after a
/// new request has been appended to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDirective {
    /// Flush the whole queue to the scheduler now (closing any open
    /// gathering window).
    Flush,
    /// Keep queueing; no timer is involved (a later arrival, an already
    /// open window, or the end of the stream will trigger the flush).
    Defer,
    /// Keep queueing and flush when the batching window expires at the
    /// given absolute time. If a window is already open it is
    /// *superseded* — returning an earlier expiry closes the running
    /// window early (the [`SlackAware`] lever).
    OpenWindow {
        /// Absolute expiry time of the (re-)opened window.
        expiry: f64,
    },
}

/// A batched-admission policy: decides how many queued requests reach the
/// scheduler in one activation.
///
/// The kernel calls [`on_arrival`](AdmissionPolicy::on_arrival) once per
/// arrival, after appending the request to the queue, with a read-only
/// [`TelemetrySnapshot`] of the online series (queue depth, EWMA arrival
/// rate, utilization, rolling acceptance, activation latency, …). The
/// policy may keep internal state — the snapshot contains only
/// simulated-time quantities, so stateful policies remain deterministic
/// per stream seed.
///
/// # Implementing a custom policy
///
/// ```
/// use amrm_core::{AdmissionDirective, AdmissionPolicy, TelemetrySnapshot};
///
/// /// Flushes whenever at least half the platform sits idle.
/// struct IdleRush;
///
/// impl AdmissionPolicy for IdleRush {
///     fn on_arrival(&mut self, snapshot: &TelemetrySnapshot, _now: f64) -> AdmissionDirective {
///         if snapshot.utilization < 0.5 {
///             AdmissionDirective::Flush
///         } else {
///             AdmissionDirective::Defer
///         }
///     }
///     fn label(&self) -> String {
///         "IdleRush".to_string()
///     }
///     fn flush_at_stream_end(&self) -> bool {
///         true // Defer-based policies must not starve leftovers
///     }
/// }
/// ```
pub trait AdmissionPolicy {
    /// The directive for the queue after a new arrival at time `now`
    /// (`snapshot.queue_depth` includes the newcomer; `now` equals
    /// `snapshot.now`).
    fn on_arrival(&mut self, snapshot: &TelemetrySnapshot, now: f64) -> AdmissionDirective;

    /// A short stable label (`"BatchK(4)"`, `"AdaptiveBatch"`) — the key
    /// used by reports and the perf baseline. Distinct policy
    /// configurations should never share a label.
    fn label(&self) -> String;

    /// Checks the policy's configuration invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Whether leftovers must be flushed when the request stream ends.
    /// Policies that `Defer` without a window (batch counting) would
    /// otherwise starve a partial final batch; window policies flush at
    /// their expiry instead.
    fn flush_at_stream_end(&self) -> bool {
        false
    }
}

impl<P: AdmissionPolicy + ?Sized> AdmissionPolicy for Box<P> {
    fn on_arrival(&mut self, snapshot: &TelemetrySnapshot, now: f64) -> AdmissionDirective {
        (**self).on_arrival(snapshot, now)
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn validate(&self) -> Result<(), String> {
        (**self).validate()
    }

    fn flush_at_stream_end(&self) -> bool {
        (**self).flush_at_stream_end()
    }
}

/// The paper's discipline: every request triggers its own scheduler
/// activation on arrival.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Immediate;

impl AdmissionPolicy for Immediate {
    fn on_arrival(&mut self, _snapshot: &TelemetrySnapshot, _now: f64) -> AdmissionDirective {
        AdmissionDirective::Flush
    }

    fn label(&self) -> String {
        "Immediate".to_string()
    }
}

/// Gather a fixed number of requests and admit them in one activation
/// (leftovers flush at the end of the stream). `BatchK(1)` is exactly the
/// per-request discipline.
///
/// # Examples
///
/// ```
/// use amrm_core::{AdmissionDirective, AdmissionPolicy, BatchK, TelemetrySnapshot};
///
/// let mut policy = BatchK(3);
/// let queued = |n| TelemetrySnapshot { queue_depth: n, ..TelemetrySnapshot::default() };
/// assert_eq!(policy.on_arrival(&queued(1), 0.0), AdmissionDirective::Defer);
/// assert_eq!(policy.on_arrival(&queued(3), 0.5), AdmissionDirective::Flush);
/// assert_eq!(policy.label(), "BatchK(3)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchK(pub usize);

impl AdmissionPolicy for BatchK {
    fn on_arrival(&mut self, snapshot: &TelemetrySnapshot, _now: f64) -> AdmissionDirective {
        if snapshot.queue_depth >= self.0 {
            AdmissionDirective::Flush
        } else {
            AdmissionDirective::Defer
        }
    }

    fn label(&self) -> String {
        format!("BatchK({})", self.0)
    }

    fn validate(&self) -> Result<(), String> {
        if self.0 == 0 {
            Err("BatchK needs a batch size of at least 1".to_string())
        } else {
            Ok(())
        }
    }

    fn flush_at_stream_end(&self) -> bool {
        true
    }
}

/// The first queued arrival opens a gathering window of fixed length `τ`;
/// everything that arrives before the window expires is admitted
/// together. `WindowTau(0.0)` degenerates to per-request admission (up to
/// simultaneous arrivals, which are grouped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowTau(pub f64);

impl AdmissionPolicy for WindowTau {
    fn on_arrival(&mut self, snapshot: &TelemetrySnapshot, now: f64) -> AdmissionDirective {
        if snapshot.window_expiry.is_some() {
            AdmissionDirective::Defer // join the already open window
        } else {
            AdmissionDirective::OpenWindow {
                expiry: now + self.0,
            }
        }
    }

    fn label(&self) -> String {
        // Full precision so close-but-distinct windows never share a key.
        format!("WindowTau({})", self.0)
    }

    fn validate(&self) -> Result<(), String> {
        if !self.0.is_finite() || self.0 < 0.0 {
            Err(format!(
                "WindowTau needs a finite window ≥ 0, got {}",
                self.0
            ))
        } else {
            Ok(())
        }
    }
}

/// AIMD batch sizing from the telemetry feedback loop: grow the batch
/// additively while load is high and admissions succeed, halve it on
/// queue drops or a collapsing rolling acceptance.
///
/// The growth test is rate-aware: the batch only grows to `k + 1` if the
/// EWMA arrival rate would fill it within
/// [`gather_target`](AdaptiveBatch::gather_target) seconds — a batch that
/// cannot fill fast enough would eat deadline slack in the queue, which
/// is precisely what the multiplicative decrease punishes after the fact.
///
/// Under sparse load the policy therefore idles at `BatchK(1)` behaviour
/// (no queue-drop risk), and under sustained dense load it climbs towards
/// [`max_batch`](AdaptiveBatch::max_batch), cutting scheduler activations
/// the way the paper's batching lever intends.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveBatch {
    /// Lower bound for the batch size (also the initial size).
    pub min_batch: usize,
    /// Upper bound for the batch size.
    pub max_batch: usize,
    /// Target gathering time: the batch grows only while the observed
    /// arrival rate fills `k + 1` requests within this many simulated
    /// seconds.
    pub gather_target: f64,
    /// Rolling acceptance below this halves the batch.
    pub low_acceptance: f64,
    /// Rolling acceptance at or above this (with sufficient load) grows
    /// the batch by one.
    pub high_acceptance: f64,
    /// Current batch size.
    k: usize,
    /// Queue drops seen at the previous decision (drop deltas trigger the
    /// multiplicative decrease).
    last_drops: usize,
}

impl AdaptiveBatch {
    /// The default configuration — the [`fitted`](AdaptiveBatch::fitted)
    /// constants, which dominate the original hand-picked defaults
    /// (batch in `[1, 12]`, 4 s gather, halve < 50 %, grow ≥ 90 %) on
    /// every tuning stream.
    pub fn new() -> Self {
        AdaptiveBatch::fitted()
    }

    /// The constants fitted by `repro tune --quick --seed 2020` against
    /// the original hand-picked defaults: mean acceptance 0.556 vs 0.478
    /// over the poisson/bursty/diurnal tuning streams, at lower energy
    /// per job (the fitting run's deltas are recorded in CHANGES.md;
    /// the committed `TUNE_baseline.json` is the *post-adoption* re-run,
    /// whose shipped row equals this winner — the fixed point). The
    /// shorter gather target batches only under genuinely dense arrivals
    /// — over-eager batching was eating deadline slack in the queue.
    pub fn fitted() -> Self {
        AdaptiveBatch::with_constants(
            17,
            2.4343004440087355,
            0.388003278411439,
            0.7996502860683732,
        )
    }

    /// An AIMD policy with explicit constants — the constructor the
    /// `repro tune` parameter search instantiates candidates through.
    /// The batch starts at (and is bounded below by) `min_batch = 1`.
    pub fn with_constants(
        max_batch: usize,
        gather_target: f64,
        low_acceptance: f64,
        high_acceptance: f64,
    ) -> Self {
        AdaptiveBatch {
            min_batch: 1,
            max_batch,
            gather_target,
            low_acceptance,
            high_acceptance,
            k: 1,
            last_drops: 0,
        }
    }

    /// The batch size currently targeted.
    pub fn current_batch(&self) -> usize {
        self.k
    }
}

impl Default for AdaptiveBatch {
    fn default() -> Self {
        AdaptiveBatch::new()
    }
}

impl AdmissionPolicy for AdaptiveBatch {
    fn on_arrival(&mut self, snapshot: &TelemetrySnapshot, _now: f64) -> AdmissionDirective {
        // Feedback first: shrink on fresh queue drops or collapsing
        // acceptance (multiplicative decrease), otherwise grow while the
        // batch keeps filling fast enough (additive increase).
        if snapshot.queue_drops > self.last_drops
            || snapshot.rolling_acceptance < self.low_acceptance
        {
            self.k = (self.k / 2).max(self.min_batch);
        } else if snapshot.rolling_acceptance >= self.high_acceptance
            && snapshot.arrival_rate * self.gather_target >= (self.k + 1) as f64
        {
            self.k = (self.k + 1).min(self.max_batch);
        }
        self.last_drops = snapshot.queue_drops;
        if snapshot.queue_depth >= self.k {
            AdmissionDirective::Flush
        } else {
            AdmissionDirective::Defer
        }
    }

    fn label(&self) -> String {
        "AdaptiveBatch".to_string()
    }

    fn validate(&self) -> Result<(), String> {
        if self.min_batch == 0 {
            return Err("AdaptiveBatch needs a minimum batch of at least 1".to_string());
        }
        if self.max_batch < self.min_batch {
            return Err(format!(
                "AdaptiveBatch batch bounds are reversed ({} > {})",
                self.min_batch, self.max_batch
            ));
        }
        if !self.gather_target.is_finite() || self.gather_target <= 0.0 {
            return Err(format!(
                "AdaptiveBatch needs a positive finite gather target, got {}",
                self.gather_target
            ));
        }
        for (name, v) in [
            ("low_acceptance", self.low_acceptance),
            ("high_acceptance", self.high_acceptance),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("AdaptiveBatch {name} must be in [0, 1], got {v}"));
            }
        }
        Ok(())
    }

    fn flush_at_stream_end(&self) -> bool {
        true
    }
}

/// A gathering window that closes early when the tightest queued slack
/// approaches the admission pipeline's recent activation latency (the
/// telemetry EWMA of batch gathering delays).
///
/// Each arrival re-derives the latest affordable close time
/// `now + min(max_window, min_slack / 2 − margin · activation_latency)`
/// — at most half the tightest queued slack may be spent gathering (the
/// other half is execution headroom; a window closing *at* a deadline
/// would admit a request with zero time to run) — and *tightens* the
/// open window if that is earlier than the current expiry: a
/// tight-deadline request arriving mid-window pulls the flush forward
/// instead of being dropped at its deadline. When the pipeline has
/// recently held batches for long (large latency EWMA), the safety guard
/// widens and windows close sooner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackAware {
    /// Upper bound on the gathering window, in simulated seconds.
    pub max_window: f64,
    /// Multiplier on the activation-latency EWMA subtracted from the
    /// tightest queued slack before sizing the window.
    pub margin: f64,
}

impl SlackAware {
    /// The default configuration — the [`fitted`](SlackAware::fitted)
    /// constants, which dominate the original hand-picked default
    /// (2 s windows, margin 2) on every tuning stream.
    pub fn new() -> Self {
        SlackAware::fitted()
    }

    /// The constants fitted by `repro tune --quick --seed 2020` against
    /// the original hand-picked default: mean acceptance 0.522 vs 0.467
    /// over the poisson/bursty/diurnal tuning streams (deltas recorded
    /// in CHANGES.md; the committed `TUNE_baseline.json` is the
    /// post-adoption fixed-point re-run). Shorter windows with a wider
    /// latency guard hold less slack hostage while gathering.
    pub fn fitted() -> Self {
        SlackAware {
            max_window: 1.0,
            margin: 3.0,
        }
    }
}

impl Default for SlackAware {
    fn default() -> Self {
        SlackAware::new()
    }
}

impl AdmissionPolicy for SlackAware {
    fn on_arrival(&mut self, snapshot: &TelemetrySnapshot, now: f64) -> AdmissionDirective {
        let slack = snapshot.min_queued_slack.unwrap_or(f64::INFINITY);
        let guard = self.margin * snapshot.activation_latency;
        // Gather for at most half the tightest slack (minus the latency
        // guard): the remainder stays available for actual execution.
        let allowance = (slack / 2.0 - guard).max(0.0);
        let close_at = now + self.max_window.min(allowance);
        match snapshot.window_expiry {
            // Tighten the running window when the newest queue state
            // affords less gathering time than originally planned.
            Some(expiry) if close_at < expiry => {
                AdmissionDirective::OpenWindow { expiry: close_at }
            }
            Some(_) => AdmissionDirective::Defer,
            None => AdmissionDirective::OpenWindow { expiry: close_at },
        }
    }

    fn label(&self) -> String {
        "SlackAware".to_string()
    }

    fn validate(&self) -> Result<(), String> {
        if !self.max_window.is_finite() || self.max_window < 0.0 {
            return Err(format!(
                "SlackAware needs a finite window ≥ 0, got {}",
                self.max_window
            ));
        }
        if !self.margin.is_finite() || self.margin < 0.0 {
            return Err(format!(
                "SlackAware needs a finite margin ≥ 0, got {}",
                self.margin
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(queue_depth: usize, now: f64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            now,
            queue_depth,
            ..TelemetrySnapshot::default()
        }
    }

    #[test]
    fn immediate_always_flushes() {
        for n in 1..5 {
            assert_eq!(
                Immediate.on_arrival(&snap(n, 1.0), 1.0),
                AdmissionDirective::Flush
            );
        }
        assert!(!Immediate.flush_at_stream_end());
    }

    #[test]
    fn batch_k_flushes_at_k() {
        let mut p = BatchK(2);
        assert_eq!(p.on_arrival(&snap(1, 0.0), 0.0), AdmissionDirective::Defer);
        assert_eq!(p.on_arrival(&snap(2, 0.0), 0.0), AdmissionDirective::Flush);
        assert_eq!(p.on_arrival(&snap(3, 0.0), 0.0), AdmissionDirective::Flush);
        assert!(p.flush_at_stream_end());
    }

    #[test]
    fn batch_one_is_per_request() {
        assert_eq!(
            BatchK(1).on_arrival(&snap(1, 7.0), 7.0),
            AdmissionDirective::Flush
        );
    }

    #[test]
    fn window_opens_once_then_joins() {
        let mut p = WindowTau(2.5);
        assert_eq!(
            p.on_arrival(&snap(1, 4.0), 4.0),
            AdmissionDirective::OpenWindow { expiry: 6.5 }
        );
        let joined = TelemetrySnapshot {
            window_expiry: Some(6.5),
            ..snap(2, 5.0)
        };
        assert_eq!(p.on_arrival(&joined, 5.0), AdmissionDirective::Defer);
        assert!(!p.flush_at_stream_end());
    }

    #[test]
    fn validation_rejects_degenerate_policies() {
        assert!(Immediate.validate().is_ok());
        assert!(BatchK(0).validate().is_err());
        assert!(BatchK(4).validate().is_ok());
        assert!(WindowTau(-1.0).validate().is_err());
        assert!(WindowTau(f64::NAN).validate().is_err());
        assert!(WindowTau(0.0).validate().is_ok());
        assert!(AdaptiveBatch::default().validate().is_ok());
        assert!(SlackAware::default().validate().is_ok());
        let reversed = AdaptiveBatch {
            min_batch: 4,
            max_batch: 2,
            ..AdaptiveBatch::default()
        };
        assert!(reversed.validate().is_err());
        let bad_margin = SlackAware {
            margin: f64::INFINITY,
            ..SlackAware::default()
        };
        assert!(bad_margin.validate().is_err());
    }

    #[test]
    fn labels_are_stable_and_injective() {
        assert_eq!(Immediate.label(), "Immediate");
        assert_eq!(BatchK(4).label(), "BatchK(4)");
        assert_eq!(WindowTau(2.0).label(), "WindowTau(2)");
        assert_eq!(AdaptiveBatch::default().label(), "AdaptiveBatch");
        assert_eq!(SlackAware::default().label(), "SlackAware");
        // Full precision: close-but-distinct windows stay distinguishable.
        assert_ne!(WindowTau(0.25).label(), WindowTau(0.251).label());
    }

    #[test]
    fn boxed_policies_forward_the_whole_trait() {
        let mut boxed: Box<dyn AdmissionPolicy> = Box::new(BatchK(2));
        assert_eq!(boxed.label(), "BatchK(2)");
        assert!(boxed.validate().is_ok());
        assert!(boxed.flush_at_stream_end());
        assert_eq!(
            boxed.on_arrival(&snap(2, 0.0), 0.0),
            AdmissionDirective::Flush
        );
    }

    #[test]
    fn adaptive_batch_grows_under_load_and_success() {
        let mut p = AdaptiveBatch::default();
        assert_eq!(p.current_batch(), 1);
        // Dense arrivals (1 per 0.5 s), perfect acceptance: the batch
        // climbs one step per decision while rate × target covers k + 1.
        let busy = TelemetrySnapshot {
            arrival_rate: 2.0,
            rolling_acceptance: 1.0,
            ..snap(1, 0.0)
        };
        for expected in [2, 3, 4] {
            p.on_arrival(&busy, 0.0);
            assert_eq!(p.current_batch(), expected);
        }
        // Rate 2/s with the fitted ~2.43 s gather target supports at
        // most k = 4: the batch must stop growing exactly there.
        for _ in 0..20 {
            p.on_arrival(&busy, 0.0);
        }
        assert_eq!(p.current_batch(), 4);
    }

    #[test]
    fn fitted_constants_are_the_defaults_and_validate() {
        // The tune winner dominates the hand-picked constants, so the
        // fitted configuration *is* the shipped default (same for
        // SlackAware); both must satisfy their own invariants.
        assert_eq!(AdaptiveBatch::fitted(), AdaptiveBatch::default());
        assert!(AdaptiveBatch::fitted().validate().is_ok());
        assert_eq!(SlackAware::fitted(), SlackAware::default());
        assert!(SlackAware::fitted().validate().is_ok());
        // The fitted AIMD policy still starts per-request.
        assert_eq!(AdaptiveBatch::fitted().current_batch(), 1);
    }

    #[test]
    fn adaptive_batch_halves_on_queue_drops() {
        let mut p = AdaptiveBatch::default();
        let busy = TelemetrySnapshot {
            arrival_rate: 4.0,
            rolling_acceptance: 1.0,
            ..snap(1, 0.0)
        };
        for _ in 0..8 {
            p.on_arrival(&busy, 0.0);
        }
        let grown = p.current_batch();
        assert!(grown >= 6);
        let dropped = TelemetrySnapshot {
            queue_drops: 1,
            ..busy.clone()
        };
        p.on_arrival(&dropped, 0.0);
        assert_eq!(p.current_batch(), grown / 2);
        // Same cumulative drop count again: no further decrease.
        p.on_arrival(&dropped, 0.0);
        assert!(p.current_batch() >= grown / 2);
    }

    #[test]
    fn adaptive_batch_shrinks_on_low_acceptance() {
        let mut p = AdaptiveBatch::default();
        let busy = TelemetrySnapshot {
            arrival_rate: 4.0,
            rolling_acceptance: 1.0,
            ..snap(1, 0.0)
        };
        for _ in 0..6 {
            p.on_arrival(&busy, 0.0);
        }
        assert!(p.current_batch() > 1);
        let failing = TelemetrySnapshot {
            rolling_acceptance: 0.2,
            ..busy
        };
        for _ in 0..5 {
            p.on_arrival(&failing, 0.0);
        }
        assert_eq!(p.current_batch(), 1);
    }

    #[test]
    fn adaptive_batch_flushes_at_current_size() {
        let mut p = AdaptiveBatch::default();
        // k stays 1 on an idle snapshot → every arrival flushes.
        assert_eq!(p.on_arrival(&snap(1, 0.0), 0.0), AdmissionDirective::Flush);
        assert!(p.flush_at_stream_end());
    }

    #[test]
    fn slack_aware_sizes_window_from_slack_and_latency() {
        let mut p = SlackAware {
            max_window: 2.0,
            margin: 2.0,
        };
        // Plenty of slack, no latency history: the full window opens.
        let roomy = TelemetrySnapshot {
            min_queued_slack: Some(10.0),
            ..snap(1, 5.0)
        };
        assert_eq!(
            p.on_arrival(&roomy, 5.0),
            AdmissionDirective::OpenWindow { expiry: 7.0 }
        );
        // Slack 3.0 with latency EWMA 0.5 → allowance 3/2 − 2·0.5 = 0.5.
        let tight = TelemetrySnapshot {
            min_queued_slack: Some(3.0),
            activation_latency: 0.5,
            ..snap(1, 5.0)
        };
        assert_eq!(
            p.on_arrival(&tight, 5.0),
            AdmissionDirective::OpenWindow { expiry: 5.5 }
        );
        // Slack below the guard: the window degenerates to "flush now".
        let exhausted = TelemetrySnapshot {
            min_queued_slack: Some(0.5),
            activation_latency: 1.0,
            ..snap(1, 5.0)
        };
        assert_eq!(
            p.on_arrival(&exhausted, 5.0),
            AdmissionDirective::OpenWindow { expiry: 5.0 }
        );
    }

    #[test]
    fn slack_aware_window_clamps_to_zero_length_under_latency_pressure() {
        // Edge cases of the window arithmetic: whenever
        // `margin × activation_latency` exceeds `min_queued_slack / 2`
        // the allowance must clamp to a zero-length (immediate-flush)
        // window at exactly `now` — never an expiry in the past, never a
        // NaN. Pinned with a latency far beyond the queued slack and with
        // an already-expired queued request (negative slack).
        let mut p = SlackAware {
            max_window: 2.0,
            margin: 2.0,
        };
        let now = 9.0;
        // Guard 2 × 100 = 200 ≫ slack/2 = 1.5.
        let swamped = TelemetrySnapshot {
            min_queued_slack: Some(3.0),
            activation_latency: 100.0,
            ..snap(1, now)
        };
        assert_eq!(
            p.on_arrival(&swamped, now),
            AdmissionDirective::OpenWindow { expiry: now }
        );
        // A queued request already past its deadline: slack is negative,
        // the window must still degenerate to "flush now", not underflow.
        let expired = TelemetrySnapshot {
            min_queued_slack: Some(-1.0),
            activation_latency: 0.5,
            ..snap(1, now)
        };
        match p.on_arrival(&expired, now) {
            AdmissionDirective::OpenWindow { expiry } => {
                assert!(expiry.is_finite());
                assert_eq!(expiry.to_bits(), now.to_bits(), "window opened off-instant");
            }
            other => panic!("expected a zero-length window, got {other:?}"),
        }
        // Under the same pressure a *running* window is tightened to the
        // immediate-flush instant rather than left to linger.
        let mid_window = TelemetrySnapshot {
            window_expiry: Some(now + 1.5),
            ..swamped
        };
        assert_eq!(
            p.on_arrival(&mid_window, now),
            AdmissionDirective::OpenWindow { expiry: now }
        );
    }

    #[test]
    fn slack_aware_tightens_but_never_extends_open_windows() {
        let mut p = SlackAware::default();
        // Open window expires at 8.0; a tight newcomer (slack 1) pulls it
        // to 6.0 + 1/2 = 6.5.
        let tight = TelemetrySnapshot {
            min_queued_slack: Some(1.0),
            window_expiry: Some(8.0),
            ..snap(2, 6.0)
        };
        assert_eq!(
            p.on_arrival(&tight, 6.0),
            AdmissionDirective::OpenWindow { expiry: 6.5 }
        );
        // A roomy newcomer must not extend the window.
        let roomy = TelemetrySnapshot {
            min_queued_slack: Some(50.0),
            window_expiry: Some(6.5),
            ..snap(3, 6.2)
        };
        assert_eq!(p.on_arrival(&roomy, 6.2), AdmissionDirective::Defer);
    }
}
