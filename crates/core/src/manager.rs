//! The runtime manager: admission control, progress tracking, energy
//! metering, and scheduler re-activation.

use amrm_model::{AppRef, Job, JobId, JobSet, Schedule, Segment};
use amrm_platform::{Platform, EPS};

use crate::Scheduler;

/// Remaining-ratio threshold below which a job counts as finished.
const RHO_DONE: f64 = 1e-9;

/// When the runtime manager re-invokes its scheduler.
///
/// The paper's RM is activated "every time a request arrives"; re-activating
/// at job completions as well lets fixed mappers pick fresh mappings when
/// resources free up (the Fig. 1(b) behaviour) and is a cheap improvement
/// for any scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactivationPolicy {
    /// Re-schedule only when a new request arrives (Fig. 1(a) for fixed
    /// mappers; sufficient for adaptive schedules, which already plan the
    /// whole horizon).
    #[default]
    OnArrival,
    /// Additionally re-schedule whenever a job completes (Fig. 1(b)).
    OnArrivalAndCompletion,
}

/// Outcome of submitting a request to the runtime manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request was admitted; the job will meet its deadline.
    Accepted {
        /// Id assigned to the admitted job.
        job: JobId,
    },
    /// No feasible schedule exists; the request is rejected and the
    /// previously admitted jobs continue undisturbed.
    Rejected {
        /// Id that was tentatively assigned to the rejected request.
        job: JobId,
    },
}

impl Admission {
    /// Returns `true` for [`Admission::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Admission::Accepted { .. })
    }

    /// The job id assigned to the request (whether admitted or not).
    pub fn job(&self) -> JobId {
        match *self {
            Admission::Accepted { job } | Admission::Rejected { job } => job,
        }
    }
}

/// Counters kept by the runtime manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmStats {
    /// Requests submitted.
    pub submitted: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Completed jobs that finished after their deadline (always 0 unless a
    /// scheduler produced an invalid schedule).
    pub deadline_misses: usize,
}

/// An online runtime manager for firm real-time multi-threaded applications.
///
/// Drive it with [`advance_to`](RuntimeManager::advance_to) and
/// [`submit`](RuntimeManager::submit); it tracks job progress along the
/// current adaptive schedule, meters consumed energy, removes completed
/// jobs, and re-invokes the scheduling algorithm per its
/// [`ReactivationPolicy`].
///
/// # Examples
///
/// Reproducing Fig. 1(c) end to end:
///
/// ```
/// use amrm_core::{MmkpMdf, RuntimeManager};
/// use amrm_workload::scenarios;
///
/// let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
/// assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
/// rm.advance_to(1.0);
/// assert!(rm.submit(scenarios::lambda2(), 5.0).is_accepted());
/// rm.run_to_completion();
/// assert!((rm.total_energy() - 14.63).abs() < 5e-3);
/// ```
#[derive(Debug)]
pub struct RuntimeManager<S> {
    platform: Platform,
    scheduler: S,
    policy: ReactivationPolicy,
    clock: f64,
    next_id: u64,
    active: Vec<ActiveJob>,
    schedule: Schedule,
    energy: f64,
    stats: RmStats,
    executed: Vec<Segment>,
}

#[derive(Debug, Clone)]
struct ActiveJob {
    id: JobId,
    app: AppRef,
    arrival: f64,
    deadline: f64,
    remaining: f64,
}

impl ActiveJob {
    fn as_job(&self) -> Job {
        Job::new(
            self.id,
            AppRef::clone(&self.app),
            self.arrival,
            self.deadline,
            self.remaining.max(RHO_DONE),
        )
    }
}

impl<S: Scheduler> RuntimeManager<S> {
    /// Creates a runtime manager with the default
    /// [`ReactivationPolicy::OnArrival`].
    pub fn new(platform: Platform, scheduler: S) -> Self {
        RuntimeManager::with_policy(platform, scheduler, ReactivationPolicy::default())
    }

    /// Creates a runtime manager with an explicit re-activation policy.
    pub fn with_policy(platform: Platform, scheduler: S, policy: ReactivationPolicy) -> Self {
        RuntimeManager {
            platform,
            scheduler,
            policy,
            clock: 0.0,
            next_id: 1,
            active: Vec::new(),
            schedule: Schedule::new(),
            energy: 0.0,
            stats: RmStats::default(),
            executed: Vec::new(),
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Total energy consumed by all (partially) executed jobs so far.
    pub fn total_energy(&self) -> f64 {
        self.energy
    }

    /// Admission and completion counters.
    pub fn stats(&self) -> RmStats {
        self.stats
    }

    /// The platform this manager runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The scheduling algorithm's name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Snapshot of the unfinished jobs, with progress advanced to
    /// [`now`](RuntimeManager::now).
    pub fn active_jobs(&self) -> JobSet {
        self.active.iter().map(ActiveJob::as_job).collect()
    }

    /// The schedule currently being executed (covering `now` onwards; the
    /// already-consumed prefix is retained for inspection).
    pub fn current_schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Everything executed so far, as one contiguous trace of mapping
    /// segments — exactly what Fig. 1 of the paper draws.
    ///
    /// Unlike [`current_schedule`](RuntimeManager::current_schedule), which
    /// is replaced on every scheduler re-activation, the trace accumulates
    /// the actually consumed portions of all successive schedules.
    pub fn executed_trace(&self) -> Schedule {
        Schedule::from_segments(self.executed.clone())
    }

    /// Submits a request for `app` with absolute deadline `deadline` at the
    /// current time, and re-runs the scheduler over all unfinished jobs.
    ///
    /// On rejection the previous schedule continues untouched (the paper's
    /// semantics: "otherwise the request is rejected").
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is in the past.
    pub fn submit(&mut self, app: AppRef, deadline: f64) -> Admission {
        assert!(deadline >= self.clock, "deadline in the past");
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.stats.submitted += 1;

        let candidate = ActiveJob {
            id,
            app,
            arrival: self.clock,
            deadline,
            remaining: 1.0,
        };
        let jobs: JobSet = self
            .active
            .iter()
            .chain(std::iter::once(&candidate))
            .map(ActiveJob::as_job)
            .collect();

        match self.scheduler.schedule(&jobs, &self.platform, self.clock) {
            Some(schedule) => {
                debug_assert!(
                    schedule.validate(&jobs, &self.platform, self.clock).is_ok(),
                    "scheduler {} produced an invalid schedule: {:?}",
                    self.scheduler.name(),
                    schedule.validate(&jobs, &self.platform, self.clock)
                );
                self.schedule = schedule;
                self.active.push(candidate);
                self.stats.accepted += 1;
                Admission::Accepted { job: id }
            }
            None => {
                self.stats.rejected += 1;
                Admission::Rejected { job: id }
            }
        }
    }

    /// Advances time to `t`, executing the current schedule: job progress
    /// and energy are accounted, completed jobs are retired, and — under
    /// [`ReactivationPolicy::OnArrivalAndCompletion`] — the scheduler is
    /// re-invoked at every completion.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the current time.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.clock - EPS, "cannot advance into the past");
        loop {
            self.reap_completed();
            let next_completion = self
                .active
                .iter()
                .filter_map(|job| self.completion_in_schedule(job))
                .filter(|&tc| tc > self.clock + EPS)
                .min_by(f64::total_cmp);
            match next_completion {
                Some(tc) if tc <= t + EPS => {
                    self.consume(tc);
                    let before = self.active.len();
                    self.reap_completed();
                    let completed_some = self.active.len() < before;
                    if completed_some
                        && self.policy == ReactivationPolicy::OnArrivalAndCompletion
                        && !self.active.is_empty()
                    {
                        let jobs = self.active_jobs();
                        if let Some(schedule) =
                            self.scheduler.schedule(&jobs, &self.platform, self.clock)
                        {
                            debug_assert!(schedule
                                .validate(&jobs, &self.platform, self.clock)
                                .is_ok());
                            self.schedule = schedule;
                        }
                    }
                }
                _ => {
                    self.consume(t);
                    self.reap_completed();
                    break;
                }
            }
        }
    }

    /// Runs until every admitted job has completed; returns the total
    /// energy consumed.
    pub fn run_to_completion(&mut self) -> f64 {
        while !self.active.is_empty() {
            let Some(end) = self.schedule.end_time() else {
                break; // no schedule covers the leftovers; nothing to do
            };
            if end <= self.clock + EPS {
                break;
            }
            self.advance_to(end);
        }
        self.energy
    }

    /// Accounts execution on `[clock, t)` against the current schedule.
    fn consume(&mut self, t: f64) {
        if t <= self.clock {
            return;
        }
        for seg in self.schedule.segments() {
            let from = seg.start().max(self.clock);
            let to = seg.end().min(t);
            if to - from <= EPS {
                continue;
            }
            let dur = to - from;
            let mut consumed = Vec::new();
            for mp in seg.mappings() {
                if let Some(job) = self.active.iter_mut().find(|j| j.id == mp.job) {
                    let p = job.app.point(mp.point);
                    job.remaining -= dur / p.time();
                    self.energy += p.energy() * dur / p.time();
                    consumed.push(*mp);
                }
            }
            if !consumed.is_empty() {
                self.executed.push(Segment::new(from, to, consumed));
            }
        }
        self.clock = t;
    }

    /// Removes finished jobs and updates counters.
    fn reap_completed(&mut self) {
        let clock = self.clock;
        let stats = &mut self.stats;
        self.active.retain(|job| {
            if job.remaining <= RHO_DONE {
                stats.completed += 1;
                if clock > job.deadline + 1e-6 {
                    stats.deadline_misses += 1;
                }
                false
            } else {
                true
            }
        });
    }

    /// The absolute time at which `job` completes under the current
    /// schedule, or `None` if the schedule does not finish it.
    fn completion_in_schedule(&self, job: &ActiveJob) -> Option<f64> {
        let mut rho = job.remaining;
        for seg in self.schedule.segments() {
            if seg.end() <= self.clock + EPS {
                continue;
            }
            let Some(mp) = seg.mapping_for(job.id) else {
                continue;
            };
            let from = seg.start().max(self.clock);
            let available = seg.end() - from;
            let p = job.app.point(mp.point);
            let needed = rho * p.time();
            if needed <= available + EPS {
                return Some(from + needed);
            }
            rho -= available / p.time();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MmkpMdf;
    use amrm_workload::scenarios;

    #[test]
    fn fig1c_end_to_end_energy() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        assert!(rm.submit(scenarios::lambda2(), 5.0).is_accepted());
        let total = rm.run_to_completion();
        assert!((total - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3, "got {total}");
        let stats = rm.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.deadline_misses, 0);
    }

    #[test]
    fn s2_is_accepted_by_adaptive_mapper() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        assert!(rm.submit(scenarios::lambda2(), 4.0).is_accepted());
        let total = rm.run_to_completion();
        assert!((total - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3);
    }

    #[test]
    fn rejection_preserves_running_jobs() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        // Deadline 1.5 is impossible for λ2 (fastest point needs 2 s).
        let admission = rm.submit(scenarios::lambda2(), 1.5);
        assert!(!admission.is_accepted());
        let total = rm.run_to_completion();
        // σ1 alone on 2L1B: 8.9 J.
        assert!((total - 8.9).abs() < 1e-6, "got {total}");
        assert_eq!(rm.stats().rejected, 1);
        assert_eq!(rm.stats().completed, 1);
    }

    #[test]
    fn progress_is_tracked_partially() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.submit(scenarios::lambda1(), 9.0);
        rm.advance_to(1.0);
        let jobs = rm.active_jobs();
        let job = jobs.jobs().first().unwrap();
        assert!((job.remaining() - (1.0 - 1.0 / 5.3)).abs() < 1e-9);
        assert!((rm.total_energy() - 8.9 / 5.3).abs() < 1e-9);
    }

    #[test]
    fn advance_without_jobs_is_a_noop() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.advance_to(5.0);
        assert!((rm.now() - 5.0).abs() < 1e-12);
        assert_eq!(rm.total_energy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "deadline in the past")]
    fn past_deadline_panics() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.advance_to(5.0);
        rm.submit(scenarios::lambda1(), 4.0);
    }

    #[test]
    fn completion_reactivation_reschedules() {
        // With OnArrivalAndCompletion the manager re-invokes the scheduler
        // when σ2 finishes; for MMKP-MDF the remaining schedule is
        // re-derived and σ1 still completes on time.
        let mut rm = RuntimeManager::with_policy(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrivalAndCompletion,
        );
        rm.submit(scenarios::lambda1(), 9.0);
        rm.advance_to(1.0);
        rm.submit(scenarios::lambda2(), 5.0);
        let total = rm.run_to_completion();
        assert_eq!(rm.stats().completed, 2);
        assert_eq!(rm.stats().deadline_misses, 0);
        // Re-scheduling at completions can only help or match.
        assert!(total <= scenarios::fig1::ADAPTIVE_J + 5e-3);
    }

    #[test]
    fn executed_trace_accounts_all_energy() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.submit(scenarios::lambda1(), 9.0);
        rm.advance_to(1.0);
        rm.submit(scenarios::lambda2(), 5.0);
        let total = rm.run_to_completion();
        // The trace spans [0, 8.3) and its (2a) energy equals the metered
        // total, because full executions have ρ = 1.
        let trace = rm.executed_trace();
        let all_jobs = amrm_model::JobSet::new(vec![
            amrm_model::Job::new(JobId(1), scenarios::lambda1(), 0.0, 9.0, 1.0),
            amrm_model::Job::new(JobId(2), scenarios::lambda2(), 1.0, 5.0, 1.0),
        ]);
        assert!((trace.energy(&all_jobs) - total).abs() < 1e-9);
        assert!((trace.start_time().unwrap() - 0.0).abs() < 1e-12);
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((trace.end_time().unwrap() - (4.0 + 5.3 * rho1)).abs() < 1e-9);
    }

    #[test]
    fn ids_are_sequential() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        let a = rm.submit(scenarios::lambda2(), 50.0);
        let b = rm.submit(scenarios::lambda2(), 60.0);
        assert_eq!(a.job(), JobId(1));
        assert_eq!(b.job(), JobId(2));
    }
}
