//! The runtime manager: admission control and scheduler re-activation on
//! top of the indexed [`ExecutionEngine`].

use amrm_model::{AppRef, JobId, JobSet, Schedule};
use amrm_platform::{Platform, EPS};

use amrm_metrics::journal::{EventKind, JournalEvent};

use crate::engine::{EngineJob, ExecutionEngine};
use crate::{Scheduler, SchedulingContext, SearchBudget, TelemetrySnapshot, TraceSink};

/// When the runtime manager re-invokes its scheduler.
///
/// The paper's RM is activated "every time a request arrives"; re-activating
/// at job completions as well lets fixed mappers pick fresh mappings when
/// resources free up (the Fig. 1(b) behaviour) and is a cheap improvement
/// for any scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactivationPolicy {
    /// Re-schedule only when a new request arrives (Fig. 1(a) for fixed
    /// mappers; sufficient for adaptive schedules, which already plan the
    /// whole horizon).
    #[default]
    OnArrival,
    /// Additionally re-schedule whenever a job completes (Fig. 1(b)).
    OnArrivalAndCompletion,
}

/// Outcome of submitting a request to the runtime manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request was admitted; the job will meet its deadline.
    Accepted {
        /// Id assigned to the admitted job.
        job: JobId,
    },
    /// No feasible schedule exists; the request is rejected and the
    /// previously admitted jobs continue undisturbed.
    Rejected {
        /// Id that was tentatively assigned to the rejected request.
        job: JobId,
    },
}

/// Why a batch decision turned out the way it did, per request — the
/// journal's reject-reason taxonomy, kept in lockstep with the
/// [`Admission`] slots of the most recent
/// [`submit_batch`](RuntimeManager::submit_batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// Admitted (under the joint schedule or a greedy retry).
    Accepted,
    /// Deadline at/behind `now` when the batch was decided; the scheduler
    /// never saw the request.
    ExpiredBeforeFlush,
    /// No feasible joint schedule existed even for this request alone.
    InfeasibleJointSchedule,
    /// The joint batch was infeasible and the greedy retry could not fit
    /// this request next to the prefix accepted before it.
    RollbackVictim,
}

impl Admission {
    /// Returns `true` for [`Admission::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Admission::Accepted { .. })
    }

    /// The job id assigned to the request (whether admitted or not).
    pub fn job(&self) -> JobId {
        match *self {
            Admission::Accepted { job } | Admission::Rejected { job } => job,
        }
    }
}

/// Counters kept by the runtime manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmStats {
    /// Requests submitted.
    pub submitted: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Completed jobs that finished after their deadline (always 0 unless a
    /// scheduler produced an invalid schedule).
    pub deadline_misses: usize,
    /// Scheduler invocations (admission attempts and re-activations) — the
    /// cost batched admission trades against acceptance.
    pub activations: usize,
}

/// An online runtime manager for firm real-time multi-threaded applications.
///
/// Drive it with [`advance_to`](RuntimeManager::advance_to) and
/// [`submit`](RuntimeManager::submit); execution accounting — job progress
/// along the current adaptive schedule, energy metering, the executed
/// trace — is delegated to an [`ExecutionEngine`], while the manager
/// decides admission and re-invokes the scheduling algorithm per its
/// [`ReactivationPolicy`].
///
/// # Examples
///
/// Reproducing Fig. 1(c) end to end:
///
/// ```
/// use amrm_core::{MmkpMdf, RuntimeManager};
/// use amrm_workload::scenarios;
///
/// let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
/// assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
/// rm.advance_to(1.0);
/// assert!(rm.submit(scenarios::lambda2(), 5.0).is_accepted());
/// rm.run_to_completion();
/// assert!((rm.total_energy() - 14.63).abs() < 5e-3);
/// ```
#[derive(Debug)]
pub struct RuntimeManager<S> {
    platform: Platform,
    scheduler: S,
    policy: ReactivationPolicy,
    next_id: u64,
    engine: ExecutionEngine,
    stats: RmStats,
    /// Wall-clock seconds the most recent [`submit_batch`]
    /// (RuntimeManager::submit_batch) spent deciding — the
    /// admission-decision latency sample the telemetry subsystem records
    /// per activation.
    last_decision_seconds: f64,
    /// The most recent telemetry snapshot observed via
    /// [`observe_telemetry`](RuntimeManager::observe_telemetry); handed to
    /// the scheduler inside every [`SchedulingContext`]. Stays at the idle
    /// default when no telemetry source feeds this manager.
    telemetry: TelemetrySnapshot,
    /// Per-activation search budget forwarded through the context.
    budget: SearchBudget,
    /// Decision-journal handle cloned into every [`SchedulingContext`];
    /// disabled by default (one branch per emission site).
    trace: TraceSink,
    /// Per-request reasons for the most recent batch decision, parallel
    /// to its admissions (in input order). Refilled on every
    /// [`submit_batch`](RuntimeManager::submit_batch).
    last_reasons: Vec<DecisionReason>,
    /// Reusable batch-decision buffers: viable candidates and the
    /// positions of their admission slots. Emptied between batches; kept
    /// to avoid two heap allocations per admission flush.
    viable_scratch: Vec<EngineJob>,
    viable_slots_scratch: Vec<usize>,
}

impl<S: Scheduler> RuntimeManager<S> {
    /// Creates a runtime manager with the default
    /// [`ReactivationPolicy::OnArrival`].
    pub fn new(platform: Platform, scheduler: S) -> Self {
        RuntimeManager::with_policy(platform, scheduler, ReactivationPolicy::default())
    }

    /// Creates a runtime manager with an explicit re-activation policy.
    pub fn with_policy(platform: Platform, scheduler: S, policy: ReactivationPolicy) -> Self {
        RuntimeManager {
            platform,
            scheduler,
            policy,
            next_id: 1,
            engine: ExecutionEngine::new(),
            stats: RmStats::default(),
            last_decision_seconds: 0.0,
            telemetry: TelemetrySnapshot::default(),
            budget: SearchBudget::unbounded(),
            trace: TraceSink::disabled(),
            last_reasons: Vec::new(),
            viable_scratch: Vec::new(),
            viable_slots_scratch: Vec::new(),
        }
    }

    /// Builder-style override of the per-activation [`SearchBudget`]
    /// (unbounded by default).
    #[must_use]
    pub fn with_search_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the per-activation [`SearchBudget`] forwarded to the scheduler
    /// through the [`SchedulingContext`].
    pub fn set_search_budget(&mut self, budget: SearchBudget) {
        self.budget = budget;
    }

    /// The configured per-activation search budget.
    pub fn search_budget(&self) -> SearchBudget {
        self.budget
    }

    /// Updates the telemetry snapshot handed to the scheduler at the next
    /// activations. The `amrm-sim` event kernel calls this right before
    /// every batch flush; outside a kernel the manager keeps the idle
    /// default snapshot (so standalone `submit` calls behave like the
    /// pre-context API).
    pub fn observe_telemetry(&mut self, snapshot: &TelemetrySnapshot) {
        self.telemetry.clone_from(snapshot);
    }

    /// Enables or disables executed-trace recording in the engine
    /// (enabled by default). Profile runs over millions of requests turn
    /// it off: admissions, energy, and completion times are bit-identical
    /// either way, only [`executed_trace`](RuntimeManager::executed_trace)
    /// comes back empty.
    pub fn set_record_trace(&mut self, record: bool) {
        self.engine.set_record_trace(record);
    }

    /// Installs the decision-journal sink cloned into every scheduling
    /// context (and used by the manager's own `ScheduleDecision` events).
    /// The default disabled sink costs one branch per emission site.
    pub fn set_trace_sink(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// The trace sink handed to schedulers (disabled unless
    /// [`set_trace_sink`](RuntimeManager::set_trace_sink) installed one).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Per-request [`DecisionReason`]s of the most recent batch decision,
    /// parallel (in input order) to the admissions it returned. Empty
    /// before the first batch.
    pub fn last_decision_reasons(&self) -> &[DecisionReason] {
        &self.last_reasons
    }

    /// The scheduling context for an activation at time `now`.
    fn context(&self, now: f64) -> SchedulingContext {
        SchedulingContext {
            now,
            telemetry: self.telemetry.clone(),
            budget: self.budget,
            trace: self.trace.clone(),
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> f64 {
        self.engine.clock()
    }

    /// Total energy consumed by all (partially) executed jobs so far.
    pub fn total_energy(&self) -> f64 {
        self.engine.total_energy()
    }

    /// Admission and completion counters.
    pub fn stats(&self) -> RmStats {
        self.stats
    }

    /// The platform this manager runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The scheduling algorithm's name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// The execution engine driving this manager.
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Read access to the scheduling algorithm (e.g. to inspect a
    /// context-aware scheduler's regime after a run).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Consumes the manager and returns its scheduler — the way a run
    /// hands back stateful algorithm internals (switch counters, memo
    /// statistics) for inspection.
    pub fn into_scheduler(self) -> S {
        self.scheduler
    }

    /// Cores busy at the current instant, per platform core type (all
    /// zeros while the platform idles).
    pub fn busy_cores(&self) -> amrm_platform::ResourceVec {
        self.engine.busy_cores(self.platform.num_types())
    }

    /// Wall-clock seconds the most recent batch admission decision took
    /// (0.0 before the first [`submit_batch`](RuntimeManager::submit_batch)).
    pub fn last_decision_seconds(&self) -> f64 {
        self.last_decision_seconds
    }

    /// Snapshot of the unfinished jobs, with progress advanced to
    /// [`now`](RuntimeManager::now).
    pub fn active_jobs(&self) -> JobSet {
        self.engine.job_set()
    }

    /// The schedule currently being executed (covering `now` onwards; the
    /// already-consumed prefix is retained for inspection).
    pub fn current_schedule(&self) -> &Schedule {
        self.engine.schedule()
    }

    /// Everything executed so far, as one contiguous trace of mapping
    /// segments — exactly what Fig. 1 of the paper draws.
    ///
    /// Unlike [`current_schedule`](RuntimeManager::current_schedule), which
    /// is replaced on every scheduler re-activation, the trace accumulates
    /// the actually consumed portions of all successive schedules.
    pub fn executed_trace(&self) -> Schedule {
        self.engine.executed_trace()
    }

    /// Submits a request for `app` with absolute deadline `deadline` at the
    /// current time, and re-runs the scheduler over all unfinished jobs.
    ///
    /// On rejection the previous schedule continues untouched (the paper's
    /// semantics: "otherwise the request is rejected"). A zero-slack
    /// request (`deadline == now`) is rejected outright without consulting
    /// the scheduler — no schedule can finish remaining work in zero time.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is in the past.
    pub fn submit(&mut self, app: AppRef, deadline: f64) -> Admission {
        assert!(deadline >= self.engine.clock(), "deadline in the past");
        self.submit_batch(&[(app, deadline)])[0]
    }

    /// Submits a whole batch of `(application, deadline)` requests at the
    /// current time and decides them *atomically*: one scheduler
    /// activation covers the unfinished jobs plus every candidate, and if
    /// that joint schedule is feasible the entire batch is admitted under
    /// it.
    ///
    /// If the joint schedule is infeasible the batch is rolled back — the
    /// engine keeps its previous jobs and schedule untouched — and the
    /// candidates are re-tried greedily in submission order, each against
    /// the jobs admitted so far, exactly like a sequence of per-request
    /// [`submit`](RuntimeManager::submit) calls at one instant. A batch of
    /// one viable candidate therefore behaves identically to `submit`:
    /// one activation, no retry.
    ///
    /// Unlike `submit`, a candidate whose deadline is not strictly in the
    /// future is rejected (without a scheduler activation) instead of
    /// panicking: under windowed admission a queued request may
    /// legitimately expire before its batch is flushed.
    ///
    /// Returns one [`Admission`] per request, in input order; job ids are
    /// assigned in input order whether admitted or not. The wall-clock
    /// decision time is recorded and exposed via
    /// [`last_decision_seconds`](RuntimeManager::last_decision_seconds).
    pub fn submit_batch(&mut self, requests: &[(AppRef, f64)]) -> Vec<Admission> {
        let mut admissions = Vec::with_capacity(requests.len());
        self.submit_batch_into(requests, &mut admissions);
        admissions
    }

    /// [`submit_batch`](RuntimeManager::submit_batch) into a caller-owned
    /// buffer: `admissions` is cleared and refilled, one entry per request
    /// in input order. The event kernel reuses one buffer across every
    /// flush, so steady-state admission allocates nothing here.
    pub fn submit_batch_into(
        &mut self,
        requests: &[(AppRef, f64)],
        admissions: &mut Vec<Admission>,
    ) {
        let started = std::time::Instant::now();
        // The candidate buffers live on the manager so repeated batches
        // reuse their capacity; they are taken out for the duration of
        // the decision to keep the borrow checker out of the hot loop.
        let mut viable = std::mem::take(&mut self.viable_scratch);
        let mut viable_slots = std::mem::take(&mut self.viable_slots_scratch);
        viable.clear();
        viable_slots.clear();
        self.decide_batch(requests, admissions, &mut viable, &mut viable_slots);
        self.viable_scratch = viable;
        self.viable_slots_scratch = viable_slots;
        self.last_decision_seconds = started.elapsed().as_secs_f64();
    }

    fn decide_batch(
        &mut self,
        requests: &[(AppRef, f64)],
        admissions: &mut Vec<Admission>,
        viable: &mut Vec<EngineJob>,
        viable_slots: &mut Vec<usize>,
    ) {
        let now = self.engine.clock();
        admissions.clear();
        self.last_reasons.clear();
        // Candidates still decidable by the scheduler, with the positions
        // of their (initially Rejected) admission slots.
        for (app, deadline) in requests {
            let id = JobId(self.next_id);
            self.next_id += 1;
            self.stats.submitted += 1;
            if *deadline <= now {
                // Expired (or zero-slack) while queued: reject without an
                // activation — no scheduler sees a deadline at/behind
                // `now`.
                self.stats.rejected += 1;
                self.last_reasons.push(DecisionReason::ExpiredBeforeFlush);
            } else {
                viable_slots.push(admissions.len());
                viable.push(EngineJob::fresh(id, AppRef::clone(app), now, *deadline));
                // Placeholder; every path below overwrites the slot.
                self.last_reasons.push(DecisionReason::RollbackVictim);
            }
            admissions.push(Admission::Rejected { job: id });
        }
        if viable.is_empty() {
            return;
        }

        // Fast path: one activation schedules existing jobs + whole batch.
        if let Some(schedule) = self.activate_with(viable, now) {
            for &slot in viable_slots.iter() {
                admissions[slot] = Admission::Accepted {
                    job: admissions[slot].job(),
                };
                self.last_reasons[slot] = DecisionReason::Accepted;
            }
            self.stats.accepted += viable.len();
            self.engine.admit_batch(viable.drain(..), schedule);
            return;
        }
        if viable.len() == 1 {
            self.stats.rejected += 1;
            self.last_reasons[viable_slots[0]] = DecisionReason::InfeasibleJointSchedule;
            return;
        }

        // Partially-infeasible batch: nothing was installed, so re-try the
        // candidates greedily in submission order against the accepted
        // prefix; only the final accepted set and its schedule land in the
        // engine.
        let mut accepted: Vec<EngineJob> = Vec::new();
        let mut accepted_schedule: Option<Schedule> = None;
        for (slot, candidate) in viable_slots.drain(..).zip(viable.drain(..)) {
            accepted.push(candidate);
            match self.activate_with(&accepted, now) {
                Some(schedule) => {
                    admissions[slot] = Admission::Accepted {
                        job: admissions[slot].job(),
                    };
                    self.last_reasons[slot] = DecisionReason::Accepted;
                    self.stats.accepted += 1;
                    accepted_schedule = Some(schedule);
                }
                None => {
                    self.stats.rejected += 1;
                    self.last_reasons[slot] = DecisionReason::RollbackVictim;
                    accepted.pop();
                }
            }
        }
        if let Some(schedule) = accepted_schedule {
            self.engine.admit_batch(accepted, schedule);
        }
    }

    /// Runs one scheduler activation over the engine's unfinished jobs
    /// plus `candidates`, counting it in the stats.
    fn activate_with(&mut self, candidates: &[EngineJob], now: f64) -> Option<Schedule> {
        let jobs: JobSet = self
            .engine
            .jobs()
            .iter()
            .chain(candidates.iter())
            .map(EngineJob::as_job)
            .collect();
        self.stats.activations += 1;
        amrm_metrics::instrument::record_schedule_call();
        let ctx = self.context(now);
        let schedule = self.scheduler.schedule(&jobs, &self.platform, &ctx)?;
        debug_assert!(
            schedule.validate(&jobs, &self.platform, now).is_ok(),
            "scheduler {} produced an invalid schedule: {:?}",
            self.scheduler.name(),
            schedule.validate(&jobs, &self.platform, now)
        );
        if self.trace.is_enabled() {
            // The chosen candidate's (2a) energy is only computed when a
            // journal is attached — the disabled path stays one branch.
            self.trace.emit(
                JournalEvent::at(now, EventKind::ScheduleDecision)
                    .detail(jobs.len() as u32)
                    .value(schedule.energy(&jobs)),
            );
        }
        Some(schedule)
    }

    /// Advances time to `t`, executing the current schedule: job progress
    /// and energy are accounted, completed jobs are retired, and — under
    /// [`ReactivationPolicy::OnArrivalAndCompletion`] — the scheduler is
    /// re-invoked at every completion.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the current time.
    pub fn advance_to(&mut self, t: f64) {
        assert!(
            t >= self.engine.clock() - EPS,
            "cannot advance into the past"
        );
        loop {
            self.retire_finished();
            match self.engine.next_completion() {
                Some(tc) if tc <= t + EPS => {
                    self.engine.consume(tc);
                    let completed_some = self.retire_finished() > 0;
                    if completed_some
                        && self.policy == ReactivationPolicy::OnArrivalAndCompletion
                        && !self.engine.is_idle()
                    {
                        let jobs = self.engine.job_set();
                        let now = self.engine.clock();
                        self.stats.activations += 1;
                        amrm_metrics::instrument::record_schedule_call();
                        let ctx = self.context(now);
                        if let Some(schedule) = self.scheduler.schedule(&jobs, &self.platform, &ctx)
                        {
                            debug_assert!(schedule.validate(&jobs, &self.platform, now).is_ok());
                            self.engine.replace_schedule(schedule);
                        }
                    }
                }
                _ => {
                    self.engine.consume(t);
                    self.retire_finished();
                    break;
                }
            }
        }
    }

    /// Runs until every admitted job has completed; returns the total
    /// energy consumed.
    pub fn run_to_completion(&mut self) -> f64 {
        while !self.engine.is_idle() {
            let Some(end) = self.engine.schedule().end_time() else {
                break; // no schedule covers the leftovers; nothing to do
            };
            if end <= self.engine.clock() + EPS {
                break;
            }
            self.advance_to(end);
        }
        self.engine.total_energy()
    }

    /// Retires finished jobs from the engine and updates the counters;
    /// returns how many jobs completed.
    fn retire_finished(&mut self) -> usize {
        let clock = self.engine.clock();
        let finished = self.engine.retire_finished();
        for job in &finished {
            self.stats.completed += 1;
            if clock > job.deadline + 1e-6 {
                self.stats.deadline_misses += 1;
            }
        }
        finished.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MmkpMdf;
    use amrm_model::JobId;
    use amrm_workload::scenarios;

    #[test]
    fn fig1c_end_to_end_energy() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        assert!(rm.submit(scenarios::lambda2(), 5.0).is_accepted());
        let total = rm.run_to_completion();
        assert!(
            (total - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3,
            "got {total}"
        );
        let stats = rm.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.deadline_misses, 0);
    }

    #[test]
    fn s2_is_accepted_by_adaptive_mapper() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        assert!(rm.submit(scenarios::lambda2(), 4.0).is_accepted());
        let total = rm.run_to_completion();
        assert!((total - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3);
    }

    #[test]
    fn rejection_preserves_running_jobs() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        // Deadline 1.5 is impossible for λ2 (fastest point needs 2 s).
        let admission = rm.submit(scenarios::lambda2(), 1.5);
        assert!(!admission.is_accepted());
        let total = rm.run_to_completion();
        // σ1 alone on 2L1B: 8.9 J.
        assert!((total - 8.9).abs() < 1e-6, "got {total}");
        assert_eq!(rm.stats().rejected, 1);
        assert_eq!(rm.stats().completed, 1);
    }

    #[test]
    fn progress_is_tracked_partially() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.submit(scenarios::lambda1(), 9.0);
        rm.advance_to(1.0);
        let jobs = rm.active_jobs();
        let job = jobs.jobs().first().unwrap();
        assert!((job.remaining() - (1.0 - 1.0 / 5.3)).abs() < 1e-9);
        assert!((rm.total_energy() - 8.9 / 5.3).abs() < 1e-9);
    }

    #[test]
    fn advance_without_jobs_is_a_noop() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.advance_to(5.0);
        assert!((rm.now() - 5.0).abs() < 1e-12);
        assert_eq!(rm.total_energy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "deadline in the past")]
    fn past_deadline_panics() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.advance_to(5.0);
        rm.submit(scenarios::lambda1(), 4.0);
    }

    #[test]
    fn completion_reactivation_reschedules() {
        // With OnArrivalAndCompletion the manager re-invokes the scheduler
        // when σ2 finishes; for MMKP-MDF the remaining schedule is
        // re-derived and σ1 still completes on time.
        let mut rm = RuntimeManager::with_policy(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrivalAndCompletion,
        );
        rm.submit(scenarios::lambda1(), 9.0);
        rm.advance_to(1.0);
        rm.submit(scenarios::lambda2(), 5.0);
        let total = rm.run_to_completion();
        assert_eq!(rm.stats().completed, 2);
        assert_eq!(rm.stats().deadline_misses, 0);
        // Re-scheduling at completions can only help or match.
        assert!(total <= scenarios::fig1::ADAPTIVE_J + 5e-3);
    }

    #[test]
    fn executed_trace_accounts_all_energy() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.submit(scenarios::lambda1(), 9.0);
        rm.advance_to(1.0);
        rm.submit(scenarios::lambda2(), 5.0);
        let total = rm.run_to_completion();
        // The trace spans [0, 8.3) and its (2a) energy equals the metered
        // total, because full executions have ρ = 1.
        let trace = rm.executed_trace();
        let all_jobs = amrm_model::JobSet::new(vec![
            amrm_model::Job::new(JobId(1), scenarios::lambda1(), 0.0, 9.0, 1.0),
            amrm_model::Job::new(JobId(2), scenarios::lambda2(), 1.0, 5.0, 1.0),
        ]);
        assert!((trace.energy(&all_jobs) - total).abs() < 1e-9);
        assert!((trace.start_time().unwrap() - 0.0).abs() < 1e-12);
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((trace.end_time().unwrap() - (4.0 + 5.3 * rho1)).abs() < 1e-9);
    }

    #[test]
    fn batch_of_one_matches_submit_exactly() {
        let mut a = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        let mut b = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(a.submit(scenarios::lambda1(), 9.0).is_accepted());
        assert!(b.submit_batch(&[(scenarios::lambda1(), 9.0)])[0].is_accepted());
        a.advance_to(1.0);
        b.advance_to(1.0);
        assert!(a.submit(scenarios::lambda2(), 5.0).is_accepted());
        assert!(b.submit_batch(&[(scenarios::lambda2(), 5.0)])[0].is_accepted());
        let ea = a.run_to_completion();
        let eb = b.run_to_completion();
        assert_eq!(ea.to_bits(), eb.to_bits());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn feasible_batch_is_admitted_in_one_activation() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        let batch = rm.submit_batch(&[
            (scenarios::lambda1(), 20.0),
            (scenarios::lambda2(), 20.0),
            (scenarios::lambda2(), 25.0),
        ]);
        assert!(batch.iter().all(Admission::is_accepted));
        assert_eq!(rm.stats().activations, 1);
        assert_eq!(rm.stats().accepted, 3);
        rm.run_to_completion();
        assert_eq!(rm.stats().completed, 3);
        assert_eq!(rm.stats().deadline_misses, 0);
    }

    #[test]
    fn partially_infeasible_batch_rolls_back_and_readmits_greedily() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        // λ2 with deadline 5 fits next to the running σ1 (Fig. 1(c)), but a
        // second λ2 with an impossible deadline poisons the joint batch.
        let batch = rm.submit_batch(&[
            (scenarios::lambda2(), 5.0),
            (scenarios::lambda2(), 1.5), // fastest point needs 2 s
        ]);
        assert!(batch[0].is_accepted());
        assert!(!batch[1].is_accepted());
        assert_eq!(batch[0].job(), JobId(2));
        assert_eq!(batch[1].job(), JobId(3));
        // One joint attempt + two greedy retries.
        assert_eq!(rm.stats().activations, 1 + 2 + 1); // +1 for the first submit
        let total = rm.run_to_completion();
        // The surviving pair executes exactly the Fig. 1(c) scenario.
        assert!(
            (total - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3,
            "got {total}"
        );
        assert_eq!(rm.stats().completed, 2);
        assert_eq!(rm.stats().deadline_misses, 0);
    }

    #[test]
    fn fully_infeasible_batch_leaves_engine_untouched() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        rm.advance_to(1.0);
        let schedule_before = rm.current_schedule().clone();
        let batch = rm.submit_batch(&[(scenarios::lambda2(), 1.5), (scenarios::lambda2(), 1.2)]);
        assert!(batch.iter().all(|a| !a.is_accepted()));
        assert_eq!(rm.current_schedule(), &schedule_before);
        assert_eq!(rm.engine().jobs().len(), 1);
        let total = rm.run_to_completion();
        assert!((total - 8.9).abs() < 1e-6, "got {total}");
    }

    #[test]
    fn expired_deadlines_are_rejected_not_panicking() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.advance_to(5.0);
        let batch = rm.submit_batch(&[
            (scenarios::lambda2(), 4.0),  // already past
            (scenarios::lambda2(), 12.0), // still viable
        ]);
        assert!(!batch[0].is_accepted());
        assert!(batch[1].is_accepted());
        let stats = rm.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 1);
        // The expired request never reaches the scheduler.
        assert_eq!(stats.activations, 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert!(rm.submit_batch(&[]).is_empty());
        assert_eq!(rm.stats(), RmStats::default());
    }

    #[test]
    fn ids_are_sequential() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        let a = rm.submit(scenarios::lambda2(), 50.0);
        let b = rm.submit(scenarios::lambda2(), 60.0);
        assert_eq!(a.job(), JobId(1));
        assert_eq!(b.job(), JobId(2));
    }

    #[test]
    fn busy_cores_and_decision_latency_are_observable() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        assert_eq!(rm.busy_cores().total(), 0);
        assert_eq!(rm.last_decision_seconds(), 0.0);
        assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
        assert!(rm.last_decision_seconds() > 0.0);
        rm.advance_to(1.0);
        // σ1 runs on 2L1B of the 2L2B platform: 3 of 4 cores busy.
        assert_eq!(rm.busy_cores().total(), 3);
        assert_eq!(rm.busy_cores().as_slice(), &[2, 1]);
        rm.run_to_completion();
        assert_eq!(rm.busy_cores().total(), 0);
    }

    #[test]
    fn engine_accessor_exposes_live_state() {
        let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
        rm.submit(scenarios::lambda1(), 9.0);
        rm.advance_to(2.0);
        assert_eq!(rm.engine().jobs().len(), 1);
        assert!((rm.engine().clock() - 2.0).abs() < 1e-12);
        assert!(rm.engine().total_energy() > 0.0);
    }
}
