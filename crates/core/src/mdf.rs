//! MMKP-MDF — Algorithm 1 of the paper (the primary contribution).
//!
//! The scheduling problem is viewed as a Multiple-choice Multi-dimensional
//! Knapsack Problem: core types are knapsacks whose capacity is processing
//! time within the analysis horizon (`J = Θ × (max δ − t)`), and each job's
//! operating points form a group of items weighted by `θ · τ · ρ`. Jobs are
//! picked by Maximum-Difference-First and packed with
//! [`schedule_jobs`](crate::schedule_jobs) (Algorithm 2).

use std::collections::HashMap;

use amrm_model::{Job, JobId, JobSet, Schedule};
use amrm_platform::{CapacityVec, Platform, EPS};

use crate::{schedule_jobs, Scheduler, SchedulingContext};

/// The MMKP-MDF scheduler.
///
/// Stateless; one instance can be reused across RM activations.
///
/// # Examples
///
/// Scheduling the motivational example at `t = 1` produces the adaptive
/// schedule of Fig. 1(c):
///
/// ```
/// use amrm_core::{MmkpMdf, Scheduler};
/// use amrm_workload::scenarios;
///
/// let jobs = scenarios::s1_jobs_at_t1();
/// let schedule = MmkpMdf::new()
///     .schedule_at(&jobs, &scenarios::platform(), 1.0)
///     .expect("feasible");
/// let rho1 = 1.0 - 1.0 / 5.3;
/// assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MmkpMdf {
    _priv: (),
}

impl MmkpMdf {
    /// Creates an MMKP-MDF scheduler.
    pub fn new() -> Self {
        MmkpMdf::default()
    }
}

/// Result of the configuration filtering inside `NEXTJOBMDF`: the indices
/// of feasible points sorted by non-decreasing remaining energy.
pub(crate) fn feasible_configs(
    job: &Job,
    containers: &CapacityVec,
    platform: &Platform,
    now: f64,
) -> Vec<usize> {
    let mut list: Vec<usize> = (0..job.app().num_points())
        .filter(|&j| {
            let p = job.point(j);
            // (i) the point can meet the deadline when started now;
            // (ii) the platform has enough cores of each type;
            // (iii) the work θ·τ·ρ fits the remaining containers J.
            job.meets_deadline_with(j, now)
                && p.resources().fits_within(platform.counts())
                && p.resources()
                    .scale(p.time() * job.remaining())
                    .fits_within(containers)
        })
        .collect();
    list.sort_by(|&a, &b| {
        job.remaining_energy(a)
            .total_cmp(&job.remaining_energy(b))
            .then(a.cmp(&b))
    });
    list
}

/// `NEXTJOBMDF`: picks the unmapped job whose best feasible point beats its
/// second best by the largest remaining-energy margin (Maximum Difference
/// First). A job with a single feasible point has infinite margin; a job
/// with none makes the whole activation infeasible (`None`).
fn next_job_mdf(
    jobs: &JobSet,
    assigned: &HashMap<JobId, usize>,
    containers: &CapacityVec,
    platform: &Platform,
    now: f64,
) -> Option<(JobId, Vec<usize>)> {
    let mut best: Option<(f64, JobId, Vec<usize>)> = None;
    for job in jobs.iter() {
        if assigned.contains_key(&job.id()) {
            continue;
        }
        let cl = feasible_configs(job, containers, platform, now);
        if cl.is_empty() {
            return None; // some job can no longer be scheduled at all
        }
        let diff = if cl.len() >= 2 {
            job.remaining_energy(cl[1]) - job.remaining_energy(cl[0])
        } else {
            f64::INFINITY
        };
        let replace = match &best {
            None => true,
            Some((d, id, _)) => diff > *d + EPS || (diff >= *d - EPS && job.id() < *id),
        };
        if replace {
            best = Some((diff, job.id(), cl));
        }
    }
    best.map(|(_, id, cl)| (id, cl))
}

impl Scheduler for MmkpMdf {
    fn name(&self) -> &str {
        "MMKP-MDF"
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        if jobs.is_empty() {
            return Some(Schedule::new());
        }
        let now = ctx.now;
        let horizon = jobs.max_deadline().expect("non-empty") - now;
        if horizon <= 0.0 {
            return None;
        }
        // Line 1: containers hold processing time per core type.
        let mut containers = platform.counts().scale(horizon);
        // Line 2: no configuration chosen yet.
        let mut assigned: HashMap<JobId, usize> = HashMap::new();
        let mut schedule = Schedule::new();

        // Line 3: iterate until every job has a configuration.
        while assigned.len() < jobs.len() {
            // Line 4: MDF job selection with filtered config list.
            let (target, mut cl) = next_job_mdf(jobs, &assigned, &containers, platform, now)?;
            let job = jobs.get(target).expect("selected from the set");

            // Lines 5–14: try configs in non-decreasing energy order.
            let mut placed = false;
            while !cl.is_empty() {
                let j_star = cl.remove(0); // argmin energy (list is sorted)
                let mut trial = assigned.clone();
                trial.insert(target, j_star);
                if let Some(built) = schedule_jobs(jobs, &trial, platform, now) {
                    // Lines 11–12: commit and charge the containers.
                    let p = job.point(j_star);
                    containers.consume(&p.resources().scale(p.time() * job.remaining()));
                    assigned = trial;
                    schedule = built;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None; // line 6
            }
        }
        Some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::{Application, Job, JobSet, OperatingPoint};
    use amrm_platform::ResourceVec;
    use amrm_workload::scenarios;

    #[test]
    fn single_job_gets_cheapest_deadline_feasible_point() {
        // Scenario S1 at t = 0: σ1 alone must pick 2L1B (8.9 J).
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        let schedule = MmkpMdf::new()
            .schedule_at(&jobs, &scenarios::platform(), 0.0)
            .unwrap();
        schedule
            .validate(&jobs, &scenarios::platform(), 0.0)
            .unwrap();
        assert!((schedule.energy(&jobs) - 8.9).abs() < 1e-9);
        assert_eq!(schedule.num_segments(), 1);
        let mapping = schedule.segments()[0].mappings()[0];
        assert_eq!(
            jobs.get(JobId(1))
                .unwrap()
                .point(mapping.point)
                .resources()
                .as_slice(),
            &[2, 1]
        );
    }

    #[test]
    fn s1_at_t1_reproduces_fig1c() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = MmkpMdf::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        // Remaining-work energy 12.951 J; adding the 1.679 J prefix gives
        // the paper's 14.63 J overall.
        assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-9);
        let total = schedule.energy(&jobs) + scenarios::fig1::PREFIX_J;
        assert!((total - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3);
        // σ2 runs [1,4) alone; σ1 is suspended then resumes.
        assert_eq!(schedule.num_segments(), 2);
        assert!(schedule.segments()[0].contains_job(JobId(2)));
        assert!(!schedule.segments()[0].contains_job(JobId(1)));
    }

    #[test]
    fn s2_at_t1_is_still_feasible_for_the_adaptive_mapper() {
        // A fixed mapper must reject S2 (Section III); MMKP-MDF finds the
        // same adaptive schedule as in S1.
        let jobs = scenarios::s2_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = MmkpMdf::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-9);
        assert!(schedule.completion_time(JobId(2)).unwrap() <= 4.0 + 1e-9);
    }

    #[test]
    fn impossible_deadline_rejected() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            1.0, // even the fastest point needs 4.7 s
            1.0,
        )]);
        assert!(MmkpMdf::new()
            .schedule_at(&jobs, &scenarios::platform(), 0.0)
            .is_none());
    }

    #[test]
    fn empty_job_set_yields_empty_schedule() {
        let schedule = MmkpMdf::new()
            .schedule_at(&JobSet::default(), &scenarios::platform(), 0.0)
            .unwrap();
        assert!(schedule.is_empty());
    }

    #[test]
    fn oversized_points_are_filtered_out() {
        // An app whose only fast point needs more cores than the platform
        // has must fall back to the feasible small point.
        let app = Application::shared(
            "fat",
            vec![
                OperatingPoint::new(ResourceVec::from_slice(&[4, 0]), 1.0, 1.0),
                OperatingPoint::new(ResourceVec::from_slice(&[1, 0]), 5.0, 3.0),
            ],
        );
        let jobs = JobSet::new(vec![Job::new(JobId(1), app, 0.0, 10.0, 1.0)]);
        let platform = scenarios::platform(); // only 2 little cores
        let schedule = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        schedule.validate(&jobs, &platform, 0.0).unwrap();
        assert!((schedule.energy(&jobs) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn past_deadline_horizon_rejected() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        assert!(MmkpMdf::new()
            .schedule_at(&jobs, &scenarios::platform(), 9.5)
            .is_none());
    }

    #[test]
    fn three_jobs_all_meet_deadlines() {
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 20.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 8.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 14.0, 0.7),
        ]);
        let platform = scenarios::platform();
        let schedule = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        schedule.validate(&jobs, &platform, 0.0).unwrap();
    }

    #[test]
    fn mdf_prefers_job_with_larger_degradation() {
        // σ1's margin between best (7.22 J) and second best (8.60 J) is
        // 1.38 J; σ2's is 0.71 J → σ1 must be mapped first and get 2L1B.
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let containers = platform.counts().scale(8.0);
        let (first, cl) =
            next_job_mdf(&jobs, &HashMap::new(), &containers, &platform, 1.0).unwrap();
        assert_eq!(first, JobId(1));
        // Best config of σ1 is 2L1B (index 6).
        assert_eq!(cl[0], 6);
    }

    #[test]
    fn next_job_returns_none_when_a_job_is_stuck() {
        // Exhausted containers leave no feasible configs.
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let containers = CapacityVec::zeros(2);
        assert!(next_job_mdf(&jobs, &HashMap::new(), &containers, &platform, 1.0).is_none());
    }
}
