//! The scheduler abstraction shared by MMKP-MDF and all baselines.

use amrm_model::{JobSet, Schedule};
use amrm_platform::Platform;

use crate::context::SchedulingContext;

/// A runtime-manager scheduling algorithm.
///
/// At every RM activation (context instant `ctx.now`) the scheduler
/// receives the full set of unfinished jobs `Σ` — progress ratios already
/// advanced to `ctx.now` — and either produces a feasible adaptive
/// [`Schedule`] covering the remaining execution of *all* jobs, or reports
/// that no feasible schedule exists (in which case the RM rejects the
/// newly arrived request and keeps the previous schedule).
///
/// Beyond the clock, the [`SchedulingContext`] carries a read-only
/// telemetry snapshot (for context-aware schedulers that pick strategies
/// by observed load) and a deterministic [`SearchBudget`]
/// (crate::SearchBudget) (for search-based schedulers that must decide in
/// bounded time online). Schedulers that need neither simply read
/// `ctx.now` and behave exactly as under the pre-context signature.
///
/// Implementations take `&mut self` so they may keep internal caches
/// (EX-MEM's memoization table) or tuning state across activations.
pub trait Scheduler {
    /// A short human-readable algorithm name (e.g. `"MMKP-MDF"`).
    fn name(&self) -> &str;

    /// Attempts to build a feasible minimum-energy schedule for `jobs` on
    /// `platform` starting at time `ctx.now`, under the context's
    /// telemetry view and search budget.
    ///
    /// Returns `None` if the algorithm cannot find a feasible schedule —
    /// the paper's `return ∅`.
    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule>;

    /// Convenience wrapper: schedules at time `now` under a default
    /// context (idle telemetry, unbounded budget) — the exact equivalent
    /// of the pre-context `schedule(jobs, platform, now)` call, used by
    /// tests, benches and standalone suite evaluation.
    fn schedule_at(&mut self, jobs: &JobSet, platform: &Platform, now: f64) -> Option<Schedule> {
        self.schedule(jobs, platform, &SchedulingContext::at(now))
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        (**self).schedule(jobs, platform, ctx)
    }
}

/// A factory producing fresh scheduler instances. Shared (`Arc`) so
/// registries can be subset and handed across evaluation threads; the
/// produced boxes are `Send` so a created scheduler can itself move to a
/// worker thread (federation shards migrate between fan-out epochs).
pub type SchedulerFactory = std::sync::Arc<dyn Fn() -> Box<dyn Scheduler + Send> + Send + Sync>;

/// A named, ordered collection of scheduler factories.
///
/// The registry is the single point where an evaluation (a benchmark
/// suite, the repro binary, a load sweep) learns *which* algorithms exist:
/// callers enumerate it instead of hard-coding per-scheduler indices, so
/// adding a scheduler to a run means registering one factory — result
/// tables, reports and sweeps pick it up unchanged.
///
/// Registration order is meaningful: it defines column order in reports
/// and the index space of per-scheduler result vectors.
///
/// # Examples
///
/// ```
/// use amrm_core::{MmkpMdf, SchedulerRegistry};
///
/// let mut registry = SchedulerRegistry::new();
/// registry.register("MMKP-MDF", || Box::new(MmkpMdf::new()));
/// let mut scheduler = registry.create("MMKP-MDF").unwrap();
/// assert_eq!(scheduler.name(), "MMKP-MDF");
/// assert_eq!(registry.names(), vec!["MMKP-MDF"]);
/// ```
#[derive(Default)]
pub struct SchedulerRegistry {
    entries: Vec<(String, SchedulerFactory)>,
}

impl SchedulerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SchedulerRegistry::default()
    }

    /// Registers a factory under `name`, appending it to the enumeration
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — scheduler names key result
    /// tables, so shadowing would silently corrupt reports.
    pub fn register<F, S>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<S> + Send + Sync + 'static,
        S: Scheduler + Send + 'static,
    {
        let name = name.into();
        assert!(
            self.index_of(&name).is_none(),
            "scheduler `{name}` already registered"
        );
        self.entries.push((
            name,
            std::sync::Arc::new(move || factory() as Box<dyn Scheduler + Send>),
        ));
    }

    /// Builder-style [`register`](SchedulerRegistry::register).
    #[must_use]
    pub fn with<F, S>(mut self, name: impl Into<String>, factory: F) -> Self
    where
        F: Fn() -> Box<S> + Send + Sync + 'static,
        S: Scheduler + Send + 'static,
    {
        self.register(name, factory);
        self
    }

    /// Number of registered schedulers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The position of `name` in the enumeration order.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    /// Instantiates the scheduler registered under `name`.
    pub fn create(&self, name: &str) -> Option<Box<dyn Scheduler + Send>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f())
    }

    /// Instantiates the scheduler at `index` in the enumeration order.
    pub fn create_at(&self, index: usize) -> Option<Box<dyn Scheduler + Send>> {
        self.entries.get(index).map(|(_, f)| f())
    }

    /// Iterates over `(name, factory)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SchedulerFactory)> {
        self.entries.iter().map(|(n, f)| (n.as_str(), f))
    }

    /// Instantiates every scheduler, in registration order.
    pub fn instantiate_all(&self) -> Vec<(&str, Box<dyn Scheduler + Send>)> {
        self.entries
            .iter()
            .map(|(n, f)| (n.as_str(), f()))
            .collect()
    }

    /// A copy of this registry restricted to `names`, in the given order.
    ///
    /// Unknown names are skipped; use [`index_of`](SchedulerRegistry::index_of)
    /// to detect them beforehand if that matters.
    pub fn subset(&self, names: &[&str]) -> SchedulerRegistry {
        let mut out = SchedulerRegistry::new();
        for &name in names {
            if let Some(idx) = self.index_of(name) {
                out.entries.push((
                    self.entries[idx].0.clone(),
                    std::sync::Arc::clone(&self.entries[idx].1),
                ));
            }
        }
        out
    }
}

impl std::fmt::Debug for SchedulerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    impl Scheduler for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }

        fn schedule(
            &mut self,
            _: &JobSet,
            _: &Platform,
            _: &SchedulingContext,
        ) -> Option<Schedule> {
            Some(Schedule::new())
        }
    }

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let mut boxed: Box<dyn Scheduler> = Box::new(Dummy);
        assert_eq!(boxed.name(), "dummy");
        let s = boxed.schedule_at(&JobSet::default(), &Platform::homogeneous(1), 0.0);
        assert!(s.is_some());
        let ctx = SchedulingContext::at(1.0);
        assert!(boxed
            .schedule(&JobSet::default(), &Platform::homogeneous(1), &ctx)
            .is_some());
    }

    #[test]
    fn registry_enumerates_in_registration_order() {
        let registry = SchedulerRegistry::new()
            .with("first", || Box::new(Dummy))
            .with("second", || Box::new(Dummy));
        assert_eq!(registry.names(), vec!["first", "second"]);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.index_of("second"), Some(1));
        assert_eq!(registry.index_of("absent"), None);
        let all = registry.instantiate_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "first");
    }

    #[test]
    fn registry_creates_fresh_instances() {
        let registry = SchedulerRegistry::new().with("dummy", || Box::new(Dummy));
        let mut a = registry.create("dummy").unwrap();
        let mut b = registry.create_at(0).unwrap();
        assert!(a
            .schedule_at(&JobSet::default(), &Platform::homogeneous(1), 0.0)
            .is_some());
        assert!(b
            .schedule_at(&JobSet::default(), &Platform::homogeneous(1), 0.0)
            .is_some());
        assert!(registry.create("missing").is_none());
    }

    #[test]
    fn registry_subset_preserves_requested_order() {
        let registry = SchedulerRegistry::new()
            .with("a", || Box::new(Dummy))
            .with("b", || Box::new(Dummy))
            .with("c", || Box::new(Dummy));
        let subset = registry.subset(&["c", "a", "nope"]);
        assert_eq!(subset.names(), vec!["c", "a"]);
        assert!(subset.create("c").is_some());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let _ = SchedulerRegistry::new()
            .with("dup", || Box::new(Dummy))
            .with("dup", || Box::new(Dummy));
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchedulerRegistry>();
    }
}
