//! The scheduler abstraction shared by MMKP-MDF and all baselines.

use amrm_model::{JobSet, Schedule};
use amrm_platform::Platform;

/// A runtime-manager scheduling algorithm.
///
/// At every RM activation (time `now`) the scheduler receives the full set
/// of unfinished jobs `Σ` — progress ratios already advanced to `now` — and
/// either produces a feasible adaptive [`Schedule`] covering the remaining
/// execution of *all* jobs, or reports that no feasible schedule exists
/// (in which case the RM rejects the newly arrived request and keeps the
/// previous schedule).
///
/// Implementations take `&mut self` so they may keep internal caches
/// (EX-MEM's memoization table) or tuning state across activations.
pub trait Scheduler {
    /// A short human-readable algorithm name (e.g. `"MMKP-MDF"`).
    fn name(&self) -> &str;

    /// Attempts to build a feasible minimum-energy schedule for `jobs` on
    /// `platform` starting at time `now`.
    ///
    /// Returns `None` if the algorithm cannot find a feasible schedule —
    /// the paper's `return ∅`.
    fn schedule(&mut self, jobs: &JobSet, platform: &Platform, now: f64) -> Option<Schedule>;
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule(&mut self, jobs: &JobSet, platform: &Platform, now: f64) -> Option<Schedule> {
        (**self).schedule(jobs, platform, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    impl Scheduler for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }

        fn schedule(&mut self, _: &JobSet, _: &Platform, _: f64) -> Option<Schedule> {
            Some(Schedule::new())
        }
    }

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let mut boxed: Box<dyn Scheduler> = Box::new(Dummy);
        assert_eq!(boxed.name(), "dummy");
        let s = boxed.schedule(&JobSet::default(), &Platform::homogeneous(1), 0.0);
        assert!(s.is_some());
    }
}
