//! Ablation variants of the MMKP scheduler: same containers, same
//! SCHEDULEJOBS packing, different *job selection* policies.
//!
//! The paper motivates Maximum-Difference-First by arguing it prioritizes
//! "the job that would cause the highest degradation if the best point is
//! not chosen in this iteration". These variants make that claim testable:
//! swap MDF for a naive order and measure the energy gap (see the
//! `ablation` report in `amrm-bench`).

use std::collections::HashMap;

use amrm_model::{JobId, JobSet, Schedule};
use amrm_platform::Platform;

use crate::mdf::feasible_configs;
use crate::{schedule_jobs, Scheduler, SchedulingContext};

/// How the next unmapped job is chosen in the Algorithm 1 outer loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobOrderPolicy {
    /// Maximum-Difference-First — the paper's policy.
    #[default]
    MaxDifference,
    /// Earliest deadline first.
    EarliestDeadline,
    /// The job whose best feasible point is cheapest goes first.
    CheapestFirst,
    /// Job-set order (arbitrary / arrival order) — the no-policy baseline.
    InsertionOrder,
}

impl JobOrderPolicy {
    /// Display name used by reports.
    pub fn name(self) -> &'static str {
        match self {
            JobOrderPolicy::MaxDifference => "MDF",
            JobOrderPolicy::EarliestDeadline => "EDF-order",
            JobOrderPolicy::CheapestFirst => "cheapest-first",
            JobOrderPolicy::InsertionOrder => "insertion-order",
        }
    }
}

/// MMKP scheduler parameterized by the job-selection policy.
///
/// With [`JobOrderPolicy::MaxDifference`] this is exactly
/// [`MmkpMdf`](crate::MmkpMdf); the other policies exist for ablation.
///
/// # Examples
///
/// ```
/// use amrm_core::{JobOrderPolicy, MmkpVariant, Scheduler};
/// use amrm_workload::scenarios;
///
/// let jobs = scenarios::s1_jobs_at_t1();
/// let platform = scenarios::platform();
/// let mdf = MmkpVariant::new(JobOrderPolicy::MaxDifference)
///     .schedule_at(&jobs, &platform, 1.0)
///     .unwrap();
/// let naive = MmkpVariant::new(JobOrderPolicy::InsertionOrder)
///     .schedule_at(&jobs, &platform, 1.0)
///     .unwrap();
/// // The MDF order can only help (here: 12.95 J vs 15.28 J).
/// assert!(mdf.energy(&jobs) <= naive.energy(&jobs) + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MmkpVariant {
    policy: JobOrderPolicy,
}

impl MmkpVariant {
    /// Creates a variant with the given job-order policy.
    pub fn new(policy: JobOrderPolicy) -> Self {
        MmkpVariant { policy }
    }

    /// The configured policy.
    pub fn policy(&self) -> JobOrderPolicy {
        self.policy
    }
}

impl Scheduler for MmkpVariant {
    fn name(&self) -> &str {
        match self.policy {
            JobOrderPolicy::MaxDifference => "MMKP-MDF(variant)",
            JobOrderPolicy::EarliestDeadline => "MMKP-EDF",
            JobOrderPolicy::CheapestFirst => "MMKP-CHEAP",
            JobOrderPolicy::InsertionOrder => "MMKP-PLAIN",
        }
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        if jobs.is_empty() {
            return Some(Schedule::new());
        }
        let now = ctx.now;
        let horizon = jobs.max_deadline().expect("non-empty") - now;
        if horizon <= 0.0 {
            return None;
        }
        let mut containers = platform.counts().scale(horizon);
        let mut assigned: HashMap<JobId, usize> = HashMap::new();
        let mut schedule = Schedule::new();

        while assigned.len() < jobs.len() {
            // Gather feasible config lists for all unmapped jobs.
            let mut pending: Vec<(JobId, Vec<usize>)> = Vec::new();
            for job in jobs.iter() {
                if assigned.contains_key(&job.id()) {
                    continue;
                }
                let cl = feasible_configs(job, &containers, platform, now);
                if cl.is_empty() {
                    return None;
                }
                pending.push((job.id(), cl));
            }

            // Select the next job per policy.
            let pick = match self.policy {
                JobOrderPolicy::MaxDifference => pending
                    .iter()
                    .enumerate()
                    .max_by(|(_, (ia, ca)), (_, (ib, cb))| {
                        let j = |id: &JobId| jobs.get(*id).expect("known id");
                        let diff = |id: &JobId, cl: &Vec<usize>| {
                            if cl.len() >= 2 {
                                j(id).remaining_energy(cl[1]) - j(id).remaining_energy(cl[0])
                            } else {
                                f64::INFINITY
                            }
                        };
                        diff(ia, ca).total_cmp(&diff(ib, cb)).then(ib.cmp(ia)) // smaller id wins ties
                    })
                    .map(|(i, _)| i),
                JobOrderPolicy::EarliestDeadline => pending
                    .iter()
                    .enumerate()
                    .min_by(|(_, (ia, _)), (_, (ib, _))| {
                        let d = |id: &JobId| jobs.get(*id).expect("known id").deadline();
                        d(ia).total_cmp(&d(ib)).then(ia.cmp(ib))
                    })
                    .map(|(i, _)| i),
                JobOrderPolicy::CheapestFirst => pending
                    .iter()
                    .enumerate()
                    .min_by(|(_, (ia, ca)), (_, (ib, cb))| {
                        let e = |id: &JobId, cl: &Vec<usize>| {
                            jobs.get(*id).expect("known id").remaining_energy(cl[0])
                        };
                        e(ia, ca).total_cmp(&e(ib, cb)).then(ia.cmp(ib))
                    })
                    .map(|(i, _)| i),
                JobOrderPolicy::InsertionOrder => Some(0),
            }?;
            let (target, mut cl) = pending.swap_remove(pick);
            let job = jobs.get(target).expect("selected from the set");

            let mut placed = false;
            while !cl.is_empty() {
                let j_star = cl.remove(0);
                let mut trial = assigned.clone();
                trial.insert(target, j_star);
                if let Some(built) = schedule_jobs(jobs, &trial, platform, now) {
                    let p = job.point(j_star);
                    containers.consume(&p.resources().scale(p.time() * job.remaining()));
                    assigned = trial;
                    schedule = built;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None;
            }
        }
        Some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MmkpMdf;
    use amrm_workload::scenarios;

    #[test]
    fn mdf_variant_matches_reference_implementation() {
        let platform = scenarios::platform();
        for jobs in [scenarios::s1_jobs_at_t1(), scenarios::s2_jobs_at_t1()] {
            let reference = MmkpMdf::new().schedule_at(&jobs, &platform, 1.0);
            let variant =
                MmkpVariant::new(JobOrderPolicy::MaxDifference).schedule_at(&jobs, &platform, 1.0);
            match (reference, variant) {
                (Some(a), Some(b)) => {
                    assert!((a.energy(&jobs) - b.energy(&jobs)).abs() < 1e-9);
                }
                (None, None) => {}
                _ => panic!("feasibility mismatch"),
            }
        }
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let platform = scenarios::platform();
        let jobs = scenarios::s1_jobs_at_t1();
        for policy in [
            JobOrderPolicy::MaxDifference,
            JobOrderPolicy::EarliestDeadline,
            JobOrderPolicy::CheapestFirst,
            JobOrderPolicy::InsertionOrder,
        ] {
            let schedule = MmkpVariant::new(policy)
                .schedule_at(&jobs, &platform, 1.0)
                .unwrap_or_else(|| panic!("{} failed", policy.name()));
            schedule.validate(&jobs, &platform, 1.0).unwrap();
        }
    }

    #[test]
    fn mdf_beats_insertion_order_on_the_motivational_example() {
        let platform = scenarios::platform();
        let jobs = scenarios::s1_jobs_at_t1();
        let mdf = MmkpVariant::new(JobOrderPolicy::MaxDifference)
            .schedule_at(&jobs, &platform, 1.0)
            .unwrap();
        let plain = MmkpVariant::new(JobOrderPolicy::InsertionOrder)
            .schedule_at(&jobs, &platform, 1.0)
            .unwrap();
        // Mapping σ1 first (MDF) secures 2L1B for it; insertion order maps
        // σ1 first as well here, so instead compare against EDF order,
        // which maps σ2 first and pushes σ1 to a worse point.
        let edf = MmkpVariant::new(JobOrderPolicy::EarliestDeadline)
            .schedule_at(&jobs, &platform, 1.0)
            .unwrap();
        assert!(mdf.energy(&jobs) <= plain.energy(&jobs) + 1e-9);
        assert!(mdf.energy(&jobs) <= edf.energy(&jobs) + 1e-9);
    }

    #[test]
    fn policy_names_are_distinct() {
        let names: Vec<&str> = [
            JobOrderPolicy::MaxDifference,
            JobOrderPolicy::EarliestDeadline,
            JobOrderPolicy::CheapestFirst,
            JobOrderPolicy::InsertionOrder,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
