//! The execution engine: progress tracking, energy metering and trace
//! recording for an adaptive schedule.
//!
//! Extracted from the runtime manager so that everything that *executes*
//! schedules — the online [`RuntimeManager`](crate::RuntimeManager), the
//! `amrm-sim` scenario driver, load sweeps — shares one accounting engine.
//!
//! The engine pre-indexes the current schedule by [`JobId`]: for every job
//! it stores the (segment index, operating-point index) pairs of the
//! segments that map it, and it keeps a cursor over the consumed schedule
//! prefix. [`consume`](ExecutionEngine::consume) and
//! [`next_completion`](ExecutionEngine::next_completion) therefore touch
//! only live segments and resolve jobs by hash lookup, replacing the
//! per-segment linear scans the manager used to do on its hottest path.

use std::collections::HashMap;

use amrm_model::{AppRef, Job, JobId, JobSet, Schedule, Segment};
use amrm_platform::{ResourceVec, EPS};

/// Remaining-ratio threshold below which a job counts as finished.
pub(crate) const RHO_DONE: f64 = 1e-9;

/// A job under execution: identity, application, request parameters and
/// remaining progress ratio.
#[derive(Debug, Clone)]
pub struct EngineJob {
    /// The job id.
    pub id: JobId,
    /// The application the job executes.
    pub app: AppRef,
    /// Absolute arrival time.
    pub arrival: f64,
    /// Absolute deadline.
    pub deadline: f64,
    /// Remaining progress ratio; `<= RHO_DONE` means finished.
    pub remaining: f64,
}

impl EngineJob {
    /// Creates a job in its initial state (`ρ = 1`).
    pub fn fresh(id: JobId, app: AppRef, arrival: f64, deadline: f64) -> Self {
        EngineJob {
            id,
            app,
            arrival,
            deadline,
            remaining: 1.0,
        }
    }

    /// Snapshot as a scheduler-facing [`Job`] (progress clamped away from
    /// zero so the `(0, 1]` invariant holds).
    pub fn as_job(&self) -> Job {
        Job::new(
            self.id,
            AppRef::clone(&self.app),
            self.arrival,
            self.deadline,
            self.remaining.max(RHO_DONE),
        )
    }

    /// Returns `true` once the remaining ratio is (numerically) zero.
    pub fn is_finished(&self) -> bool {
        self.remaining <= RHO_DONE
    }
}

/// Indexed executor for adaptive schedules.
///
/// Owns the set of unfinished jobs, the schedule being executed, the
/// simulation clock, the metered energy, and the executed-segment trace.
/// Scheduling policy (admission, re-activation) stays with the caller.
///
/// # Examples
///
/// ```
/// use amrm_core::{EngineJob, ExecutionEngine};
/// use amrm_model::{JobId, JobMapping, Schedule, Segment};
/// use amrm_workload::scenarios;
///
/// let mut engine = ExecutionEngine::new();
/// let mut schedule = Schedule::new();
/// schedule.push(Segment::new(0.0, 3.0, vec![JobMapping::new(JobId(1), 6)]));
/// engine.admit(
///     EngineJob::fresh(JobId(1), scenarios::lambda2(), 0.0, 5.0),
///     schedule,
/// );
/// let done = engine.next_completion().unwrap();
/// assert!((done - 3.0).abs() < 1e-9);
/// engine.consume(done);
/// assert_eq!(engine.retire_finished().len(), 1);
/// assert!((engine.total_energy() - 5.73).abs() < 1e-9);
/// ```
#[derive(Debug, Default)]
pub struct ExecutionEngine {
    clock: f64,
    energy: f64,
    schedule: Schedule,
    /// Per job: ascending `(segment index, operating-point index)` pairs
    /// over the current schedule. Rebuilt on schedule replacement.
    segments_by_job: HashMap<JobId, Vec<(u32, u32)>>,
    /// Index of the first segment that may still overlap `[clock, ∞)`.
    live_from: usize,
    jobs: Vec<EngineJob>,
    job_index: HashMap<JobId, usize>,
    executed: Vec<Segment>,
    /// When set, consumed segments are not appended to the executed
    /// trace — progress and energy accounting are unaffected. Million-
    /// request profile runs turn this on: the trace would otherwise grow
    /// O(events) with no reader.
    trace_disabled: bool,
}

impl ExecutionEngine {
    /// Creates an idle engine at time 0 with an empty schedule.
    pub fn new() -> Self {
        ExecutionEngine::default()
    }

    /// The current execution time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Total energy metered so far, in joules.
    pub fn total_energy(&self) -> f64 {
        self.energy
    }

    /// The unfinished jobs, in admission order.
    pub fn jobs(&self) -> &[EngineJob] {
        &self.jobs
    }

    /// Returns `true` if no unfinished job remains.
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The schedule currently being executed.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Snapshot of the unfinished jobs as a [`JobSet`] with progress
    /// advanced to [`clock`](ExecutionEngine::clock).
    pub fn job_set(&self) -> JobSet {
        self.jobs.iter().map(EngineJob::as_job).collect()
    }

    /// The executed trace: the consumed portions of all successive
    /// schedules, as one contiguous list of mapping segments. Empty when
    /// trace recording is disabled.
    pub fn executed_trace(&self) -> Schedule {
        Schedule::from_segments(self.executed.clone())
    }

    /// Enables or disables executed-trace recording (enabled by default).
    /// Disabling only stops the O(events) trace accumulation; progress,
    /// energy, and completion times are bit-identical either way.
    pub fn set_record_trace(&mut self, record: bool) {
        self.trace_disabled = !record;
    }

    /// Admits a job and installs the schedule covering it.
    ///
    /// # Panics
    ///
    /// Panics if a job with the same id is already active.
    pub fn admit(&mut self, job: EngineJob, schedule: Schedule) {
        self.admit_batch(vec![job], schedule);
    }

    /// Admits several jobs atomically and installs the one schedule
    /// covering them all — one scheduler activation for a whole admission
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if any job's id is already active (or duplicated in the
    /// batch).
    ///
    /// Takes any `EngineJob` iterator so hot paths can `drain(..)` a
    /// reusable scratch buffer instead of moving a fresh `Vec` per batch.
    pub fn admit_batch(&mut self, jobs: impl IntoIterator<Item = EngineJob>, schedule: Schedule) {
        for job in jobs {
            assert!(
                !self.job_index.contains_key(&job.id),
                "job {} already active",
                job.id
            );
            self.job_index.insert(job.id, self.jobs.len());
            self.jobs.push(job);
        }
        self.replace_schedule(schedule);
    }

    /// Replaces the schedule under execution (a scheduler re-activation)
    /// and rebuilds the per-job segment index.
    pub fn replace_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
        self.live_from = 0;
        self.segments_by_job.clear();
        for (si, seg) in self.schedule.segments().iter().enumerate() {
            for mp in seg.mappings() {
                self.segments_by_job
                    .entry(mp.job)
                    .or_default()
                    .push((si as u32, mp.point as u32));
            }
        }
    }

    /// Accounts execution on `[clock, t)` against the current schedule:
    /// job progress and energy are updated and the consumed segment
    /// portions are appended to the executed trace. Completed jobs stay
    /// active until [`retire_finished`](ExecutionEngine::retire_finished).
    pub fn consume(&mut self, t: f64) {
        if t <= self.clock {
            return;
        }
        let segments = self.schedule.segments();
        while self.live_from < segments.len() && segments[self.live_from].end() <= self.clock + EPS
        {
            self.live_from += 1;
        }
        for seg in &segments[self.live_from..] {
            if seg.start() >= t - EPS {
                break;
            }
            let from = seg.start().max(self.clock);
            let to = seg.end().min(t);
            if to - from <= EPS {
                continue;
            }
            let dur = to - from;
            let mut consumed = Vec::new();
            for mp in seg.mappings() {
                let Some(&slot) = self.job_index.get(&mp.job) else {
                    continue;
                };
                let job = &mut self.jobs[slot];
                let p = job.app.point(mp.point);
                job.remaining -= dur / p.time();
                self.energy += p.energy() * dur / p.time();
                if !self.trace_disabled {
                    consumed.push(*mp);
                }
            }
            if !consumed.is_empty() {
                self.executed.push(Segment::new(from, to, consumed));
            }
        }
        self.clock = t;
    }

    /// Removes finished jobs, preserving admission order of the rest, and
    /// returns the retired jobs.
    pub fn retire_finished(&mut self) -> Vec<EngineJob> {
        if self.jobs.iter().all(|j| !j.is_finished()) {
            return Vec::new();
        }
        let (finished, rest): (Vec<EngineJob>, Vec<EngineJob>) = std::mem::take(&mut self.jobs)
            .into_iter()
            .partition(EngineJob::is_finished);
        self.jobs = rest;
        self.job_index = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.id, i))
            .collect();
        finished
    }

    /// Cores busy *right now*: the per-type resource demand of the
    /// schedule segment covering [`clock`](ExecutionEngine::clock),
    /// restricted to jobs that are still active. Returns all zeros when
    /// no segment covers the current instant (idle gap or drained
    /// schedule) — the utilization sample the telemetry subsystem
    /// records at every kernel event.
    pub fn busy_cores(&self, num_types: usize) -> ResourceVec {
        let mut busy = ResourceVec::zeros(num_types);
        for seg in &self.schedule.segments()[self.live_from..] {
            if seg.start() > self.clock + EPS {
                break; // segments are time-ordered; nothing covers `clock`
            }
            if seg.end() <= self.clock + EPS {
                continue;
            }
            for mp in seg.mappings() {
                if let Some(&slot) = self.job_index.get(&mp.job) {
                    busy += self.jobs[slot].app.point(mp.point).resources();
                }
            }
            break;
        }
        busy
    }

    /// The earliest strictly-future completion time of any unfinished job
    /// under the current schedule, or `None` if the schedule finishes no
    /// further job.
    pub fn next_completion(&self) -> Option<f64> {
        self.jobs
            .iter()
            .filter_map(|job| self.completion_time(job))
            .filter(|&tc| tc > self.clock + EPS)
            .min_by(f64::total_cmp)
    }

    /// The absolute time at which `job` completes under the current
    /// schedule, or `None` if the schedule does not finish it.
    ///
    /// Only the segments mapping `job` are visited, via the per-job index.
    pub fn completion_time(&self, job: &EngineJob) -> Option<f64> {
        let entries = self.segments_by_job.get(&job.id)?;
        let segments = self.schedule.segments();
        let mut rho = job.remaining;
        for &(si, point) in entries {
            let seg = &segments[si as usize];
            if seg.end() <= self.clock + EPS {
                continue;
            }
            let from = seg.start().max(self.clock);
            let available = seg.end() - from;
            let p = job.app.point(point as usize);
            let needed = rho * p.time();
            if needed <= available + EPS {
                return Some(from + needed);
            }
            rho -= available / p.time();
        }
        None
    }
}

/// The pre-refactor accounting, kept verbatim as a correctness and
/// performance reference: `consume` walks every segment and resolves jobs
/// with a linear `Vec` scan, `completion_time` scans the whole schedule
/// per job. Used by equivalence tests and `benches/engine.rs`; not part of
/// the public API surface.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct LinearScanEngine {
    clock: f64,
    energy: f64,
    schedule: Schedule,
    jobs: Vec<EngineJob>,
    executed: Vec<Segment>,
}

#[doc(hidden)]
impl LinearScanEngine {
    pub fn new() -> Self {
        LinearScanEngine::default()
    }

    pub fn clock(&self) -> f64 {
        self.clock
    }

    pub fn total_energy(&self) -> f64 {
        self.energy
    }

    pub fn jobs(&self) -> &[EngineJob] {
        &self.jobs
    }

    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    pub fn executed_trace(&self) -> Schedule {
        Schedule::from_segments(self.executed.clone())
    }

    pub fn admit(&mut self, job: EngineJob, schedule: Schedule) {
        self.jobs.push(job);
        self.replace_schedule(schedule);
    }

    pub fn replace_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
    }

    pub fn consume(&mut self, t: f64) {
        if t <= self.clock {
            return;
        }
        for seg in self.schedule.segments() {
            let from = seg.start().max(self.clock);
            let to = seg.end().min(t);
            if to - from <= EPS {
                continue;
            }
            let dur = to - from;
            let mut consumed = Vec::new();
            for mp in seg.mappings() {
                if let Some(job) = self.jobs.iter_mut().find(|j| j.id == mp.job) {
                    let p = job.app.point(mp.point);
                    job.remaining -= dur / p.time();
                    self.energy += p.energy() * dur / p.time();
                    consumed.push(*mp);
                }
            }
            if !consumed.is_empty() {
                self.executed.push(Segment::new(from, to, consumed));
            }
        }
        self.clock = t;
    }

    pub fn retire_finished(&mut self) -> Vec<EngineJob> {
        let (finished, rest): (Vec<EngineJob>, Vec<EngineJob>) = std::mem::take(&mut self.jobs)
            .into_iter()
            .partition(EngineJob::is_finished);
        self.jobs = rest;
        finished
    }

    pub fn next_completion(&self) -> Option<f64> {
        self.jobs
            .iter()
            .filter_map(|job| self.completion_time(job))
            .filter(|&tc| tc > self.clock + EPS)
            .min_by(f64::total_cmp)
    }

    pub fn completion_time(&self, job: &EngineJob) -> Option<f64> {
        let mut rho = job.remaining;
        for seg in self.schedule.segments() {
            if seg.end() <= self.clock + EPS {
                continue;
            }
            let Some(mp) = seg.mapping_for(job.id) else {
                continue;
            };
            let from = seg.start().max(self.clock);
            let available = seg.end() - from;
            let p = job.app.point(mp.point);
            let needed = rho * p.time();
            if needed <= available + EPS {
                return Some(from + needed);
            }
            rho -= available / p.time();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::JobMapping;
    use amrm_workload::scenarios;

    fn fig1c_engine<E: Default>(admit: fn(&mut E, EngineJob, Schedule)) -> E {
        // The Fig. 1(c) schedule at t = 1 for jobs σ1 (progressed) and σ2.
        let rho1 = 1.0 - 1.0 / 5.3;
        let mut schedule = Schedule::new();
        schedule.push(Segment::new(1.0, 4.0, vec![JobMapping::new(JobId(2), 6)]));
        schedule.push(Segment::new(
            4.0,
            4.0 + 5.3 * rho1,
            vec![JobMapping::new(JobId(1), 6)],
        ));
        let mut engine = E::default();
        let mut j1 = EngineJob::fresh(JobId(1), scenarios::lambda1(), 0.0, 9.0);
        j1.remaining = rho1;
        admit(&mut engine, j1, Schedule::new());
        admit(
            &mut engine,
            EngineJob::fresh(JobId(2), scenarios::lambda2(), 1.0, 5.0),
            schedule,
        );
        engine
    }

    #[test]
    fn indexed_engine_executes_fig1c_tail() {
        let mut engine: ExecutionEngine = fig1c_engine(|e, j, s| e.admit(j, s));
        engine.consume(1.0);
        let c2 = engine.next_completion().unwrap();
        assert!((c2 - 4.0).abs() < 1e-9);
        engine.consume(c2);
        assert_eq!(engine.retire_finished().len(), 1);
        let c1 = engine.next_completion().unwrap();
        engine.consume(c1);
        assert_eq!(engine.retire_finished().len(), 1);
        assert!(engine.is_idle());
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((engine.total_energy() - (5.73 + 8.9 * rho1)).abs() < 1e-9);
    }

    #[test]
    fn indexed_and_linear_engines_agree_exactly() {
        let mut indexed: ExecutionEngine = fig1c_engine(|e, j, s| e.admit(j, s));
        let mut linear: LinearScanEngine = fig1c_engine(|e, j, s| e.admit(j, s));
        for engine_step in [1.0, 2.5, 4.0, 6.0, 9.0] {
            indexed.consume(engine_step);
            linear.consume(engine_step);
            assert_eq!(indexed.next_completion(), linear.next_completion());
            assert_eq!(
                indexed.retire_finished().len(),
                linear.retire_finished().len()
            );
            assert_eq!(indexed.total_energy(), linear.total_energy());
        }
        assert_eq!(indexed.executed_trace(), linear.executed_trace());
    }

    #[test]
    fn consume_ignores_unknown_jobs_in_segments() {
        // A schedule may still reference retired jobs; they are skipped.
        let mut engine = ExecutionEngine::new();
        let mut schedule = Schedule::new();
        schedule.push(Segment::new(
            0.0,
            2.0,
            vec![JobMapping::new(JobId(7), 0), JobMapping::new(JobId(1), 6)],
        ));
        engine.admit(
            EngineJob::fresh(JobId(1), scenarios::lambda2(), 0.0, 9.0),
            schedule,
        );
        engine.consume(2.0);
        // Only σ1's energy is metered: 2/3 of λ2 on 2L1B.
        assert!((engine.total_energy() - 5.73 * 2.0 / 3.0).abs() < 1e-9);
        // The trace keeps only the mappings that were actually consumed.
        let trace = engine.executed_trace();
        assert_eq!(trace.segments()[0].mappings().len(), 1);
        assert_eq!(trace.segments()[0].mappings()[0].job, JobId(1));
    }

    #[test]
    fn replace_schedule_rebuilds_index() {
        let mut engine = ExecutionEngine::new();
        let mut first = Schedule::new();
        first.push(Segment::new(0.0, 10.0, vec![JobMapping::new(JobId(1), 0)]));
        engine.admit(
            EngineJob::fresh(JobId(1), scenarios::lambda2(), 0.0, 20.0),
            first,
        );
        engine.consume(1.0);
        // Re-activation: switch the job to the fast point from t = 1.
        let mut second = Schedule::new();
        second.push(Segment::new(1.0, 10.0, vec![JobMapping::new(JobId(1), 6)]));
        engine.replace_schedule(second);
        let done = engine.next_completion().unwrap();
        // 90% of the work remains; 2.7 s on the 3.0 s point.
        assert!((done - (1.0 + 0.9 * 3.0)).abs() < 1e-9);
    }

    #[test]
    fn batch_admission_installs_one_schedule_for_all_jobs() {
        let mut engine = ExecutionEngine::new();
        let mut schedule = Schedule::new();
        schedule.push(Segment::new(0.0, 3.0, vec![JobMapping::new(JobId(1), 6)]));
        schedule.push(Segment::new(3.0, 6.0, vec![JobMapping::new(JobId(2), 6)]));
        engine.admit_batch(
            vec![
                EngineJob::fresh(JobId(1), scenarios::lambda2(), 0.0, 5.0),
                EngineJob::fresh(JobId(2), scenarios::lambda2(), 0.0, 9.0),
            ],
            schedule,
        );
        assert_eq!(engine.jobs().len(), 2);
        engine.consume(6.0);
        assert_eq!(engine.retire_finished().len(), 2);
        assert!((engine.total_energy() - 2.0 * 5.73).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_batch_ids_panic() {
        let mut engine = ExecutionEngine::new();
        engine.admit_batch(
            vec![
                EngineJob::fresh(JobId(3), scenarios::lambda2(), 0.0, 9.0),
                EngineJob::fresh(JobId(3), scenarios::lambda2(), 0.0, 9.0),
            ],
            Schedule::new(),
        );
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_admission_panics() {
        let mut engine = ExecutionEngine::new();
        engine.admit(
            EngineJob::fresh(JobId(1), scenarios::lambda2(), 0.0, 9.0),
            Schedule::new(),
        );
        engine.admit(
            EngineJob::fresh(JobId(1), scenarios::lambda2(), 0.0, 9.0),
            Schedule::new(),
        );
    }
}
