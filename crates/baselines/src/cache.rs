//! The persistent warm-start mapping cache behind EX-MEM's cross-
//! activation memo.
//!
//! Hybrid design-time/run-time mapping work (Weichslgartner et al.,
//! PAPERS.md) splits the expensive search off the critical path: mappings
//! proven at design time are *loaded* at run time instead of re-derived.
//! [`MappingCache`] is that split for this reproduction's exact path —
//! EX-MEM's memo table extracted into an owned, serializable store, so a
//! recorded workload (see `amrm_workload::{save_stream, load_stream}`)
//! can be replayed *warm*: the second run serves proofs from disk instead
//! of searching from scratch, and stays bit-identical in admissions and
//! energy because every served entry is an `Exact` optimum or an
//! `Infeasible` proof — never a truncation-tainted upper bound.
//!
//! # Persistence rules
//!
//! * **Proofs only.** [`MappingCache::save`] persists `Exact` and
//!   `Infeasible` entries; `Anytime` upper bounds and incumbent-relative
//!   `Bound`s are dropped (they are refinable artifacts of one run's
//!   budget, and replaying them could steer a warm run away from the cold
//!   run's trajectory).
//! * **Bit-exact floats.** Energies and deadlines are stored as raw IEEE
//!   bits (`f64::to_bits`), never as decimal text, so a save→load
//!   roundtrip cannot perturb a single ulp.
//! * **Content-based signatures.** Each referenced job carries a
//!   [`JobSig`]: application *name* plus an FNV-1a fingerprint over its
//!   operating-point table and the raw deadline bits. Pointer identity
//!   does not survive serialization, so a loaded cache revalidates
//!   against the *current* application library by content before any hit
//!   is served — a renamed app, an edited point table, or a changed
//!   deadline voids the table exactly like an in-process mismatch.
//! * **Deterministic files.** Entries and signatures are written in
//!   sorted key order, so the same cache state always produces the same
//!   bytes (hash-map iteration order never leaks into the file).
//!
//! # Examples
//!
//! ```
//! use amrm_baselines::{ExMem, MappingCache};
//! use amrm_core::Scheduler;
//! use amrm_workload::scenarios;
//!
//! let jobs = scenarios::s1_jobs_at_t1();
//! let platform = scenarios::platform();
//!
//! // Cold run: solve, then keep the proofs.
//! let mut cold = ExMem::new();
//! cold.schedule_at(&jobs, &platform, 1.0).unwrap();
//! let dir = std::env::temp_dir().join("amrm_cache_doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("s1.cache.json");
//! cold.cache().save(&path).unwrap();
//!
//! // Warm run: identical schedule, served from the loaded proofs.
//! let mut warm = ExMem::new().with_cache(MappingCache::load(&path).unwrap());
//! let schedule = warm.schedule_at(&jobs, &platform, 1.0).unwrap();
//! assert!(warm.last_warm_hits() > 0);
//! assert_eq!(schedule, cold.schedule_at(&jobs, &platform, 1.0).unwrap());
//! ```

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use amrm_model::{AppRef, Job};
use serde::value::get_field;
use serde::{Deserialize, Error, Serialize, Value};

/// Memo key: quantized activation time plus the quantized
/// `(JobId, remaining-ratio)` multiset, in state order.
pub(crate) type Key = (u64, Vec<(u64, u64)>);

/// One memoized search result (see `exmem.rs` for how each class is
/// derived and consumed).
#[derive(Debug, Clone)]
pub(crate) enum MemoVal {
    /// Exact optimum from this state, with the optimal first-segment
    /// assignment (`None` = job suspended) in state order.
    Exact {
        energy: f64,
        choice: Vec<Option<usize>>,
    },
    /// A *feasible* completion with this energy exists via this choice —
    /// found under a truncated (budgeted or rank-capped) search, so it is
    /// an upper bound, not a proven optimum.
    Anytime {
        energy: f64,
        choice: Vec<Option<usize>>,
    },
    /// The optimum from this state is ≥ this bound (an exhaustive search
    /// with that incumbent found nothing better).
    Bound { at_least: f64 },
    /// No feasible completion exists at all.
    Infeasible,
}

/// What a job's memoized states were derived under; any change voids the
/// whole table. The signature is *content-based* — application name, an
/// FNV-1a fingerprint of the operating-point table, and the raw deadline
/// bits — so it survives serialization and revalidates a loaded cache
/// against the current application library (raw pointers would neither
/// survive the roundtrip nor be safe to compare across processes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JobSig {
    pub(crate) app_name: String,
    pub(crate) points_fp: u64,
    pub(crate) deadline_bits: u64,
}

impl JobSig {
    pub(crate) fn of(job: &Job) -> Self {
        JobSig {
            app_name: job.app().name().to_string(),
            points_fp: points_fingerprint(job.app()),
            deadline_bits: job.deadline().to_bits(),
        }
    }

    pub(crate) fn matches(&self, job: &Job) -> bool {
        self.deadline_bits == job.deadline().to_bits()
            && self.app_name == job.app().name()
            && self.points_fp == points_fingerprint(job.app())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a fingerprint of an application's operating-point table: for each
/// point, the resource counts followed by the raw time and energy bits.
/// Everything EX-MEM's memoized values depend on per job (beyond the
/// deadline) is a function of this table, so two applications with equal
/// fingerprints are interchangeable for memo validity.
pub(crate) fn points_fingerprint(app: &AppRef) -> u64 {
    let mut hash = fnv_u64(FNV_OFFSET, app.num_points() as u64);
    for point in app.points() {
        hash = fnv_u64(hash, point.resources().num_types() as u64);
        for count in point.resources().iter() {
            hash = fnv_u64(hash, u64::from(count));
        }
        hash = fnv_u64(hash, point.time().to_bits());
        hash = fnv_u64(hash, point.energy().to_bits());
    }
    hash
}

/// Cache file format version (bumped on incompatible layout changes; a
/// mismatch is an error, never a silent reinterpretation).
const CACHE_VERSION: u64 = 1;
/// `choice` slot encoding for a suspended job (`None`).
const SUSPENDED: i64 = -1;

/// EX-MEM's cross-activation memo as an owned, serializable store: the
/// memoized search results, the per-job validity signatures guarding
/// them, and the set of keys that were loaded from disk (for warm-start
/// accounting).
///
/// Constructed empty by [`ExMem::new`](crate::ExMem::new), loaded from a
/// recorded file with [`MappingCache::load`] +
/// [`ExMem::with_cache`](crate::ExMem::with_cache), and saved after a run
/// with [`MappingCache::save`] via
/// [`ExMem::cache`](crate::ExMem::cache).
#[derive(Debug, Clone, Default)]
pub struct MappingCache {
    pub(crate) memo: HashMap<Key, MemoVal>,
    pub(crate) signatures: HashMap<u64, JobSig>,
    /// Keys that came from disk: a conclusive hit on one counts as a
    /// `cache_warm_hit` in the activation aggregate.
    pub(crate) warm: HashSet<Key>,
}

impl MappingCache {
    /// An empty cache (what a cold [`ExMem`](crate::ExMem) starts with).
    pub fn new() -> Self {
        MappingCache::default()
    }

    /// Memoized states currently held (all classes, not just proofs).
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Returns `true` when no states are held.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// States that would survive [`save`](MappingCache::save): the
    /// `Exact` optima and `Infeasible` proofs.
    pub fn proof_count(&self) -> usize {
        self.memo
            .values()
            .filter(|v| matches!(v, MemoVal::Exact { .. } | MemoVal::Infeasible))
            .count()
    }

    /// States loaded from disk and still resident.
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }

    pub(crate) fn clear(&mut self) {
        self.memo.clear();
        self.signatures.clear();
        self.warm.clear();
    }

    /// Writes the proofs (`Exact` + `Infeasible`) and their signatures as
    /// JSON, in sorted key order so equal cache states produce equal
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Loads a cache written by [`save`](MappingCache::save). Every
    /// loaded key is marked *warm* so conclusive hits on it are counted
    /// as `cache_warm_hit`s.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, or `InvalidData` when the file
    /// is not a version-1 cache.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<MappingCache> {
        let file = File::open(path)?;
        serde_json::from_reader(BufReader::new(file))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn key_to_value(key: &Key) -> Value {
    let (time_q, state) = key;
    Value::Obj(vec![
        ("time_q".into(), Value::UInt(*time_q)),
        (
            "state".into(),
            Value::Arr(
                state
                    .iter()
                    .map(|&(id, rho_q)| Value::Arr(vec![Value::UInt(id), Value::UInt(rho_q)]))
                    .collect(),
            ),
        ),
    ])
}

fn choice_to_value(choice: &[Option<usize>]) -> Value {
    Value::Arr(
        choice
            .iter()
            .map(|slot| match slot {
                Some(cfg) => Value::UInt(*cfg as u64),
                None => Value::Int(SUSPENDED),
            })
            .collect(),
    )
}

fn key_from_fields(fields: &[(String, Value)]) -> Result<Key, Error> {
    let time_q = u64::from_value(get_field(fields, "time_q")?)?;
    let state = get_field(fields, "state")?
        .as_arr()
        .ok_or_else(|| Error::new("cache entry `state` must be an array"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .ok_or_else(|| Error::new("cache state element must be a [job, rho] pair"))?;
            match pair {
                [id, rho_q] => Ok((u64::from_value(id)?, u64::from_value(rho_q)?)),
                _ => Err(Error::new("cache state element must be a [job, rho] pair")),
            }
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok((time_q, state))
}

fn choice_from_value(v: &Value) -> Result<Vec<Option<usize>>, Error> {
    v.as_arr()
        .ok_or_else(|| Error::new("cache entry `choice` must be an array"))?
        .iter()
        .map(|slot| match slot {
            Value::Int(SUSPENDED) => Ok(None),
            other => usize::from_value(other).map(Some),
        })
        .collect()
}

impl Serialize for MappingCache {
    fn to_value(&self) -> Value {
        let mut signatures: Vec<(&u64, &JobSig)> = self.signatures.iter().collect();
        signatures.sort_by_key(|(id, _)| **id);
        let signatures = signatures
            .into_iter()
            .map(|(id, sig)| {
                Value::Obj(vec![
                    ("job".into(), Value::UInt(*id)),
                    ("app".into(), Value::Str(sig.app_name.clone())),
                    ("points_fp".into(), Value::UInt(sig.points_fp)),
                    ("deadline_bits".into(), Value::UInt(sig.deadline_bits)),
                ])
            })
            .collect();

        let mut proofs: Vec<(&Key, &MemoVal)> = self
            .memo
            .iter()
            .filter(|(_, v)| matches!(v, MemoVal::Exact { .. } | MemoVal::Infeasible))
            .collect();
        proofs.sort_by_key(|(key, _)| *key);
        let entries = proofs
            .into_iter()
            .map(|(key, val)| {
                let mut fields = match key_to_value(key) {
                    Value::Obj(fields) => fields,
                    _ => unreachable!("key_to_value builds an object"),
                };
                match val {
                    MemoVal::Exact { energy, choice } => {
                        fields.push(("kind".into(), Value::Str("exact".into())));
                        fields.push(("energy_bits".into(), Value::UInt(energy.to_bits())));
                        fields.push(("choice".into(), choice_to_value(choice)));
                    }
                    MemoVal::Infeasible => {
                        fields.push(("kind".into(), Value::Str("infeasible".into())));
                    }
                    _ => unreachable!("only proofs are persisted"),
                }
                Value::Obj(fields)
            })
            .collect();

        Value::Obj(vec![
            ("version".into(), Value::UInt(CACHE_VERSION)),
            ("signatures".into(), Value::Arr(signatures)),
            ("entries".into(), Value::Arr(entries)),
        ])
    }
}

impl Deserialize for MappingCache {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_obj()
            .ok_or_else(|| Error::new("mapping cache must be an object"))?;
        let version = u64::from_value(get_field(fields, "version")?)?;
        if version != CACHE_VERSION {
            return Err(Error::new(format!(
                "unsupported mapping-cache version {version} (expected {CACHE_VERSION})"
            )));
        }

        let mut signatures = HashMap::new();
        for sig in get_field(fields, "signatures")?
            .as_arr()
            .ok_or_else(|| Error::new("cache `signatures` must be an array"))?
        {
            let sig = sig
                .as_obj()
                .ok_or_else(|| Error::new("cache signature must be an object"))?;
            let id = u64::from_value(get_field(sig, "job")?)?;
            signatures.insert(
                id,
                JobSig {
                    app_name: get_field(sig, "app")?
                        .as_str()
                        .ok_or_else(|| Error::new("signature `app` must be a string"))?
                        .to_string(),
                    points_fp: u64::from_value(get_field(sig, "points_fp")?)?,
                    deadline_bits: u64::from_value(get_field(sig, "deadline_bits")?)?,
                },
            );
        }

        let mut memo = HashMap::new();
        let mut warm = HashSet::new();
        for entry in get_field(fields, "entries")?
            .as_arr()
            .ok_or_else(|| Error::new("cache `entries` must be an array"))?
        {
            let entry = entry
                .as_obj()
                .ok_or_else(|| Error::new("cache entry must be an object"))?;
            let key = key_from_fields(entry)?;
            let kind = get_field(entry, "kind")?
                .as_str()
                .ok_or_else(|| Error::new("cache entry `kind` must be a string"))?;
            let val = match kind {
                "exact" => MemoVal::Exact {
                    energy: f64::from_bits(u64::from_value(get_field(entry, "energy_bits")?)?),
                    choice: choice_from_value(get_field(entry, "choice")?)?,
                },
                "infeasible" => MemoVal::Infeasible,
                other => {
                    return Err(Error::new(format!(
                        "unknown cache entry kind `{other}` (proofs are `exact`/`infeasible`)"
                    )))
                }
            };
            warm.insert(key.clone());
            memo.insert(key, val);
        }

        Ok(MappingCache {
            memo,
            signatures,
            warm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::{Application, JobId, OperatingPoint};
    use amrm_platform::ResourceVec;

    fn app(name: &str, energy: f64) -> AppRef {
        Application::shared(
            name,
            vec![OperatingPoint::new(
                ResourceVec::from_slice(&[1, 0]),
                2.0,
                energy,
            )],
        )
    }

    fn sample_cache() -> MappingCache {
        let mut cache = MappingCache::new();
        let job = Job::new(JobId(7), app("alpha", 3.5), 0.0, 9.25, 1.0);
        cache.signatures.insert(7, JobSig::of(&job));
        cache.memo.insert(
            (100, vec![(7, 500_000_000)]),
            MemoVal::Exact {
                energy: 1.75,
                choice: vec![Some(0), None],
            },
        );
        cache
            .memo
            .insert((200, vec![(7, 1_000_000_000)]), MemoVal::Infeasible);
        cache.memo.insert(
            (300, vec![(7, 250_000_000)]),
            MemoVal::Bound { at_least: 4.0 },
        );
        cache.memo.insert(
            (400, vec![(7, 125_000_000)]),
            MemoVal::Anytime {
                energy: 2.5,
                choice: vec![Some(0)],
            },
        );
        cache
    }

    #[test]
    fn roundtrip_keeps_proofs_and_drops_refinables() {
        let cache = sample_cache();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.proof_count(), 2);
        let back = MappingCache::from_value(&cache.to_value()).expect("roundtrip must deserialize");
        assert_eq!(back.len(), 2, "only proofs are persisted");
        assert_eq!(back.warm_len(), 2, "loaded keys are all warm");
        match back.memo.get(&(100, vec![(7, 500_000_000)])) {
            Some(MemoVal::Exact { energy, choice }) => {
                assert_eq!(energy.to_bits(), 1.75f64.to_bits());
                assert_eq!(choice, &vec![Some(0), None]);
            }
            other => panic!("expected exact entry, got {other:?}"),
        }
        assert!(matches!(
            back.memo.get(&(200, vec![(7, 1_000_000_000)])),
            Some(MemoVal::Infeasible)
        ));
        assert_eq!(back.signatures, cache.signatures);
    }

    #[test]
    fn serialized_bytes_are_deterministic() {
        let cache = sample_cache();
        let a = serde_json::to_string(&cache).unwrap();
        let b = serde_json::to_string(&cache.clone()).unwrap();
        assert_eq!(a, b);
        // Keys appear in sorted order regardless of hash-map order.
        let t100 = a.find("\"time_q\":100").unwrap();
        let t200 = a.find("\"time_q\":200").unwrap();
        assert!(t100 < t200);
    }

    #[test]
    fn save_load_roundtrips_through_a_file() {
        let cache = sample_cache();
        let dir = std::env::temp_dir().join("amrm_cache_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cache.json");
        cache.save(&path).unwrap();
        let back = MappingCache::load(&path).unwrap();
        assert_eq!(back.len(), cache.proof_count());
        assert_eq!(back.signatures, cache.signatures);
    }

    #[test]
    fn version_mismatch_is_invalid_data() {
        let dir = std::env::temp_dir().join("amrm_cache_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_version.cache.json");
        std::fs::write(&path, r#"{"version":99,"signatures":[],"entries":[]}"#).unwrap();
        let err = MappingCache::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn signature_fingerprint_tracks_point_table_content() {
        let job_a = Job::new(JobId(1), app("alpha", 3.5), 0.0, 9.0, 1.0);
        let sig = JobSig::of(&job_a);
        // A *different allocation* with identical content still matches —
        // this is exactly what pointer identity could not provide across
        // a serialization boundary.
        let same_content = Job::new(JobId(1), app("alpha", 3.5), 0.0, 9.0, 1.0);
        assert!(sig.matches(&same_content));
        // Any content change voids the signature.
        let renamed = Job::new(JobId(1), app("beta", 3.5), 0.0, 9.0, 1.0);
        assert!(!sig.matches(&renamed));
        let retimed = Job::new(JobId(1), app("alpha", 3.75), 0.0, 9.0, 1.0);
        assert!(!sig.matches(&retimed));
        let moved_deadline = Job::new(JobId(1), app("alpha", 3.5), 0.0, 9.5, 1.0);
        assert!(!sig.matches(&moved_deadline));
    }
}
