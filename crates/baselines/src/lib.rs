//! Baseline schedulers evaluated against MMKP-MDF in the paper.
//!
//! * [`ExMem`] — the exhaustive, memoized optimal reference (Section VI-A);
//! * [`MmkpLr`] — the Lagrangian-relaxation MMKP heuristic with
//!   single-segment analysis scope (Wildermann et al.);
//! * [`FixedMapper`] — a state-of-the-art fixed mapper that never
//!   reconfigures running jobs (Fig. 1(a)/(b) behaviour).
//!
//! All three implement [`amrm_core::Scheduler`] and can be plugged into the
//! [`amrm_core::RuntimeManager`] unchanged.
//!
//! # Examples
//!
//! ```
//! use amrm_baselines::ExMem;
//! use amrm_core::{MmkpMdf, Scheduler};
//! use amrm_workload::scenarios;
//!
//! let jobs = scenarios::s1_jobs_at_t1();
//! let platform = scenarios::platform();
//! let optimal = ExMem::new().schedule(&jobs, &platform, 1.0).unwrap();
//! let heuristic = MmkpMdf::new().schedule(&jobs, &platform, 1.0).unwrap();
//! assert!(optimal.energy(&jobs) <= heuristic.energy(&jobs) + 1e-9);
//! ```

mod exmem;
mod fixed;
mod incremental;
mod lr;

pub use crate::exmem::ExMem;
pub use crate::fixed::FixedMapper;
pub use crate::incremental::IncrementalMapper;
pub use crate::lr::MmkpLr;
