//! Baseline schedulers evaluated against MMKP-MDF in the paper.
//!
//! * [`ExMem`] — the exhaustive, memoized optimal reference (Section VI-A);
//! * [`MmkpLr`] — the Lagrangian-relaxation MMKP heuristic with
//!   single-segment analysis scope (Wildermann et al.);
//! * [`FixedMapper`] — a state-of-the-art fixed mapper that never
//!   reconfigures running jobs (Fig. 1(a)/(b) behaviour);
//! * [`IncrementalMapper`] — maps new jobs onto currently free cores only;
//! * [`MetaScheduler`] — a telemetry-driven meta-scheduler switching
//!   between the registry algorithms by observed load regime.
//!
//! All implement [`amrm_core::Scheduler`] and can be plugged into the
//! [`amrm_core::RuntimeManager`] unchanged. [`standard_registry`] collects
//! them — together with MMKP-MDF — into the
//! [`SchedulerRegistry`](amrm_core::SchedulerRegistry) that benchmark
//! suites, sweeps and the repro binary enumerate.
//!
//! # Examples
//!
//! ```
//! use amrm_baselines::ExMem;
//! use amrm_core::{MmkpMdf, Scheduler};
//! use amrm_workload::scenarios;
//!
//! let jobs = scenarios::s1_jobs_at_t1();
//! let platform = scenarios::platform();
//! let optimal = ExMem::new().schedule_at(&jobs, &platform, 1.0).unwrap();
//! let heuristic = MmkpMdf::new().schedule_at(&jobs, &platform, 1.0).unwrap();
//! assert!(optimal.energy(&jobs) <= heuristic.energy(&jobs) + 1e-9);
//! ```

mod cache;
mod exmem;
mod fixed;
mod incremental;
mod lr;
mod meta;

pub use crate::cache::MappingCache;
pub use crate::exmem::ExMem;
pub use crate::fixed::FixedMapper;
pub use crate::incremental::IncrementalMapper;
pub use crate::lr::MmkpLr;
pub use crate::meta::{BudgetRegime, MetaConfig, MetaScheduler, Regime};

use amrm_core::{MmkpMdf, SchedulerRegistry};

/// Registry name of the exhaustive optimal reference.
pub const EXMEM_NAME: &str = "EX-MEM";
/// Registry name of the Lagrangian-relaxation heuristic.
pub const LR_NAME: &str = "MMKP-LR";
/// Registry name of the paper's MMKP-MDF heuristic.
pub const MDF_NAME: &str = "MMKP-MDF";
/// Registry name of the fixed mapper.
pub const FIXED_NAME: &str = "FIXED";
/// Registry name of the incremental (free-cores-only) mapper.
pub const INCREMENTAL_NAME: &str = "INCREMENTAL";
/// Registry name of the telemetry-driven meta-scheduler.
pub const META_NAME: &str = "META";

/// All schedulers of the reproduction, in report order: the three the
/// paper evaluates (EX-MEM, MMKP-LR, MMKP-MDF) followed by the fixed and
/// incremental baselines and the telemetry-driven META selector.
///
/// Each name matches the scheduler's own [`Scheduler::name`]
/// (`amrm_core::Scheduler::name`), so results keyed by registry name and
/// log lines keyed by scheduler name agree.
///
/// # Examples
///
/// ```
/// use amrm_baselines::standard_registry;
///
/// let registry = standard_registry();
/// assert_eq!(
///     registry.names(),
///     vec!["EX-MEM", "MMKP-LR", "MMKP-MDF", "FIXED", "INCREMENTAL", "META"]
/// );
/// let mut mdf = registry.create("MMKP-MDF").unwrap();
/// assert_eq!(mdf.name(), "MMKP-MDF");
/// ```
pub fn standard_registry() -> SchedulerRegistry {
    SchedulerRegistry::new()
        .with(EXMEM_NAME, || Box::new(ExMem::new()))
        .with(LR_NAME, || Box::new(MmkpLr::new()))
        .with(MDF_NAME, || Box::new(MmkpMdf::new()))
        .with(FIXED_NAME, || Box::new(FixedMapper::new()))
        .with(INCREMENTAL_NAME, || Box::new(IncrementalMapper::new()))
        .with(META_NAME, || Box::new(MetaScheduler::new()))
}

/// The three algorithms of the paper's evaluation (Section VI), in the
/// order used by its tables and figures.
pub fn paper_registry() -> SchedulerRegistry {
    standard_registry().subset(&[EXMEM_NAME, LR_NAME, MDF_NAME])
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use amrm_core::Scheduler;
    use amrm_workload::scenarios;

    #[test]
    fn registry_names_match_scheduler_names() {
        let registry = standard_registry();
        for (name, factory) in registry.iter() {
            assert_eq!(factory().name(), name);
        }
    }

    #[test]
    fn paper_registry_is_the_evaluated_triple() {
        assert_eq!(
            paper_registry().names(),
            vec![EXMEM_NAME, LR_NAME, MDF_NAME]
        );
    }

    #[test]
    fn every_registered_scheduler_handles_s1() {
        let platform = scenarios::platform();
        let jobs = scenarios::s1_jobs_at_t1();
        for (name, mut scheduler) in standard_registry().instantiate_all() {
            if let Some(schedule) = scheduler.schedule_at(&jobs, &platform, 1.0) {
                schedule
                    .validate(&jobs, &platform, 1.0)
                    .unwrap_or_else(|e| panic!("{name} produced an invalid schedule: {e}"));
            }
        }
    }
}
