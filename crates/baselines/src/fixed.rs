//! Fixed mappers: the state-of-the-art behaviour the paper improves on.
//!
//! A fixed mapper assigns one operating point per job at every RM
//! activation and never reconfigures or suspends jobs: all jobs run
//! concurrently from the activation instant until they individually finish.
//! Consequently the *sum* of all chosen resource vectors must fit the
//! platform, which is exactly why scenario S2 of the motivational example
//! is infeasible for fixed mappers.
//!
//! Combined with the runtime manager's
//! [`ReactivationPolicy`](amrm_core::ReactivationPolicy):
//! `OnArrival` yields Fig. 1(a), `OnArrivalAndCompletion` yields Fig. 1(b).

use amrm_core::{Scheduler, SchedulingContext};
use amrm_model::{JobMapping, JobSet, Schedule, Segment};
use amrm_platform::{Platform, ResourceVec, EPS};

/// Energy-optimal fixed mapper.
///
/// Finds the joint configuration assignment minimizing total remaining
/// energy subject to (a) every job meeting its deadline when started
/// immediately and (b) all configurations fitting the platform
/// *simultaneously*. The search is exact (depth-first with an admissible
/// lower bound), which is affordable because fixed mappings have no
/// segment structure to explore.
///
/// # Examples
///
/// ```
/// use amrm_baselines::FixedMapper;
/// use amrm_core::{Scheduler, SchedulingContext};
/// use amrm_workload::scenarios;
///
/// // S1 at t = 1: the best fixed mapping is 1L1B for both jobs.
/// let jobs = scenarios::s1_jobs_at_t1();
/// let schedule = FixedMapper::new()
///     .schedule_at(&jobs, &scenarios::platform(), 1.0)
///     .expect("feasible");
/// // σ1 remaining on 1L1B: 10.9·ρ1 = 8.84 J, σ2: 6.44 J.
/// let rho1 = 1.0 - 1.0 / 5.3;
/// assert!((schedule.energy(&jobs) - (10.9 * rho1 + 6.44)).abs() < 1e-9);
///
/// // S2 is infeasible for any fixed mapping (Section III).
/// let jobs = scenarios::s2_jobs_at_t1();
/// assert!(FixedMapper::new().schedule_at(&jobs, &scenarios::platform(), 1.0).is_none());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedMapper {
    _priv: (),
}

impl FixedMapper {
    /// Creates a fixed mapper.
    pub fn new() -> Self {
        FixedMapper::default()
    }
}

impl Scheduler for FixedMapper {
    fn name(&self) -> &str {
        "FIXED"
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        let now = ctx.now;
        if jobs.is_empty() {
            return Some(Schedule::new());
        }

        // Per-job feasible configs, sorted by remaining energy.
        let mut options: Vec<(usize, Vec<usize>)> = Vec::new(); // (job index, configs)
        for (ji, job) in jobs.iter().enumerate() {
            let mut cl: Vec<usize> = (0..job.app().num_points())
                .filter(|&j| {
                    job.point(j).resources().fits_within(platform.counts())
                        && job.meets_deadline_with(j, now)
                })
                .collect();
            if cl.is_empty() {
                return None;
            }
            cl.sort_by(|&a, &b| job.remaining_energy(a).total_cmp(&job.remaining_energy(b)));
            options.push((ji, cl));
        }
        // Tightest jobs first prunes faster.
        options.sort_by_key(|(_, cl)| cl.len());

        // Admissible bound: suffix sums of per-job minimum energies.
        let n = options.len();
        let mut suffix_min = vec![0.0; n + 1];
        for i in (0..n).rev() {
            let (ji, cl) = &options[i];
            let job = &jobs.jobs()[*ji];
            suffix_min[i] = suffix_min[i + 1] + job.remaining_energy(cl[0]);
        }

        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut chosen = vec![0usize; n];
        dfs(
            jobs,
            platform,
            &options,
            &suffix_min,
            0,
            &ResourceVec::zeros(platform.num_types()),
            0.0,
            &mut chosen,
            &mut best,
        );

        let (_, picks) = best?;
        // Map job index -> chosen point.
        let mut assignment = vec![0usize; jobs.len()];
        for (slot, (ji, cl)) in options.iter().enumerate() {
            assignment[*ji] = cl[picks[slot]];
        }
        Some(build_fixed_schedule(jobs, &assignment, now))
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    jobs: &JobSet,
    platform: &Platform,
    options: &[(usize, Vec<usize>)],
    suffix_min: &[f64],
    depth: usize,
    used: &ResourceVec,
    energy: f64,
    chosen: &mut Vec<usize>,
    best: &mut Option<(f64, Vec<usize>)>,
) {
    if let Some((b, _)) = best {
        if energy + suffix_min[depth] >= *b - EPS {
            return;
        }
    }
    if depth == options.len() {
        *best = Some((energy, chosen[..].to_vec()));
        return;
    }
    let (ji, cl) = &options[depth];
    let job = &jobs.jobs()[*ji];
    for (ci, &cfg) in cl.iter().enumerate() {
        let demand = used + job.point(cfg).resources();
        if !demand.fits_within(platform.counts()) {
            continue;
        }
        chosen[depth] = ci;
        dfs(
            jobs,
            platform,
            options,
            suffix_min,
            depth + 1,
            &demand,
            energy + job.remaining_energy(cfg),
            chosen,
            best,
        );
    }
}

/// Expresses a fixed assignment as a segmented schedule: one boundary per
/// distinct completion time, each job mapped until it finishes.
fn build_fixed_schedule(jobs: &JobSet, assignment: &[usize], now: f64) -> Schedule {
    let completions: Vec<f64> = jobs
        .iter()
        .enumerate()
        .map(|(ji, job)| now + job.remaining_time(assignment[ji]))
        .collect();
    let mut boundaries = completions.clone();
    boundaries.sort_by(f64::total_cmp);
    boundaries.dedup_by(|a, b| (*a - *b).abs() < EPS);

    let mut schedule = Schedule::new();
    let mut start = now;
    for &end in &boundaries {
        if end - start <= EPS {
            continue;
        }
        let mappings: Vec<JobMapping> = jobs
            .iter()
            .enumerate()
            .filter(|(ji, _)| completions[*ji] > start + EPS)
            .map(|(ji, job)| JobMapping::new(job.id(), assignment[ji]))
            .collect();
        schedule.push(Segment::new(start, end, mappings));
        start = end;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::{Job, JobId, JobSet};
    use amrm_workload::scenarios;

    #[test]
    fn s1_at_t1_picks_1l1b_for_both() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = FixedMapper::new()
            .schedule_at(&jobs, &platform, 1.0)
            .unwrap();
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        // Fig. 1(a): remaining energy 8.84 + 6.44; with the 1.679 J prefix
        // this is the paper's 16.96 J.
        let expected = 10.9 * rho1 + 6.44;
        assert!((schedule.energy(&jobs) - expected).abs() < 1e-9);
        let total = schedule.energy(&jobs) + scenarios::fig1::PREFIX_J;
        assert!((total - scenarios::fig1::FIXED_AT_START_J).abs() < 5e-3);
    }

    #[test]
    fn s2_is_rejected() {
        let jobs = scenarios::s2_jobs_at_t1();
        assert!(FixedMapper::new()
            .schedule_at(&jobs, &scenarios::platform(), 1.0)
            .is_none());
    }

    #[test]
    fn schedule_splits_at_completions() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = FixedMapper::new()
            .schedule_at(&jobs, &platform, 1.0)
            .unwrap();
        // σ2 finishes at 4.5, σ1 at 1 + 6.57 ≈ 7.57 → two segments.
        assert_eq!(schedule.num_segments(), 2);
        assert!((schedule.completion_time(JobId(2)).unwrap() - 4.5).abs() < 1e-9);
        assert!(schedule.segments()[1].contains_job(JobId(1)));
        assert!(!schedule.segments()[1].contains_job(JobId(2)));
    }

    #[test]
    fn single_job_matches_mdf_choice() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        let platform = scenarios::platform();
        let schedule = FixedMapper::new()
            .schedule_at(&jobs, &platform, 0.0)
            .unwrap();
        assert!((schedule.energy(&jobs) - 8.9).abs() < 1e-9);
    }

    #[test]
    fn empty_set_is_trivially_feasible() {
        let schedule = FixedMapper::new()
            .schedule_at(&JobSet::default(), &scenarios::platform(), 0.0)
            .unwrap();
        assert!(schedule.is_empty());
    }
}
