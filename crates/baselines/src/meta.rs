//! META: a telemetry-driven meta-scheduler that switches between registry
//! algorithms by the observed load regime.
//!
//! The paper's core claim is that an *adaptable* runtime beats any fixed
//! mapping policy by switching operating points as conditions change;
//! hybrid design-time/run-time work (Weichslgartner et al.; E-Mapper)
//! extends the same argument to the *selector itself*: no single
//! scheduling algorithm dominates every regime, so the runtime should
//! pick one per activation from the observed load and its time budget.
//! [`MetaScheduler`] implements that selector on top of the
//! [`SchedulingContext`]:
//!
//! | regime  | signal                                                        | algorithm |
//! |---------|---------------------------------------------------------------|-----------|
//! | *light* | calm arrivals, moderate utilization                           | MMKP-MDF (full-horizon containers, best heuristic energy) |
//! | *heavy* | EWMA arrival rate **and** utilization above the enter thresholds | MMKP-LR (single-segment scope — cheapest per activation when many jobs stack) |
//! | *exact* | calm **and** few jobs, shallow queue, generous slack          | budgeted EX-MEM (anytime; degrades to MDF's answer on budget expiry) |
//!
//! Regime changes are *hysteretic*: the heavy regime is entered at
//! `heavy_enter_*` and only left once the signals fall below the lower
//! `heavy_exit_*` thresholds, so a rate oscillating around one threshold
//! does not flap the algorithm every activation. Everything the selector
//! reads is simulated time and state (the context's telemetry snapshot),
//! so META runs are deterministic per stream seed.
//!
//! Beyond *which* algorithm runs, META also adapts *how hard* the exact
//! regime may search: a second, independent **budget regime** with the
//! same hysteresis discipline watches the admission pipeline's
//! decision-latency signal — the larger of the activation-latency EWMA
//! and the queue-wait p95, both simulated seconds — and tightens the
//! per-activation EX-MEM [`SearchBudget`] while the pipeline is already
//! holding requests long (an expensive exact search would eat slack the
//! queue cannot afford), relaxing it back to the full budget once the
//! pipeline is prompt again. The signal is sim-time telemetry only, so
//! budget-adaptive runs stay deterministic per stream seed.

use amrm_core::{MmkpMdf, Scheduler, SchedulingContext, SearchBudget};
use amrm_metrics::journal::{EventKind, JournalEvent};
use amrm_model::{JobSet, Schedule};
use amrm_platform::Platform;

use crate::{ExMem, MmkpLr};

/// The load regime META currently operates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Regime {
    /// Calm load: MMKP-MDF.
    #[default]
    Light,
    /// Sustained overload: MMKP-LR.
    Heavy,
    /// Calm load with few jobs, a shallow queue and generous slack:
    /// budgeted EX-MEM.
    Exact,
}

impl Regime {
    /// Display name used by reports and tests.
    pub fn name(self) -> &'static str {
        match self {
            Regime::Light => "light",
            Regime::Heavy => "heavy",
            Regime::Exact => "exact",
        }
    }
}

/// The search-budget regime META's exact regime currently operates in —
/// switched with the same enter/exit hysteresis discipline as the
/// algorithm [`Regime`], but on the pipeline's decision-latency signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetRegime {
    /// Prompt pipeline: EX-MEM gets the full configured budget.
    #[default]
    Generous,
    /// The pipeline has recently held requests long (high activation
    /// latency / queue-wait p95): EX-MEM's budget is tightened so the
    /// exact search cannot add decision latency the slack can't afford.
    Tight,
}

impl BudgetRegime {
    /// Display name used by reports and tests.
    pub fn name(self) -> &'static str {
        match self {
            BudgetRegime::Generous => "generous",
            BudgetRegime::Tight => "tight",
        }
    }
}

/// Thresholds and budgets of the [`MetaScheduler`] regime switch.
///
/// The heavy regime is entered only when *both* enter signals hold (a
/// rate spike alone, with an idle platform, is not overload) and left
/// when *either* signal falls below its exit threshold. Exit thresholds
/// sit well below the enter thresholds — the hysteresis band that keeps
/// an oscillating signal from flapping the algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaConfig {
    /// EWMA arrival rate (requests per simulated second) at or above
    /// which — together with utilization — the heavy regime is entered.
    pub heavy_enter_rate: f64,
    /// Arrival rate below which the heavy regime may be left.
    pub heavy_exit_rate: f64,
    /// EWMA platform utilization at or above which — together with the
    /// rate — the heavy regime is entered.
    pub heavy_enter_util: f64,
    /// Utilization below which the heavy regime may be left.
    pub heavy_exit_util: f64,
    /// The exact regime requires at most this many unfinished jobs in the
    /// activation.
    pub exact_max_jobs: usize,
    /// The exact regime requires at most this many requests still queued
    /// at the last admission decision point.
    pub exact_max_queue: usize,
    /// The exact regime requires every job's slack (`deadline − now`) to
    /// be at least this many simulated seconds.
    pub exact_min_slack: f64,
    /// The work budget handed to the anytime EX-MEM in the exact regime
    /// (composed with the context's own budget).
    pub exmem_budget: SearchBudget,
    /// Whether the EX-MEM budget adapts to the observed decision-latency
    /// signal (the budget regime). `false` pins the fixed
    /// [`exmem_budget`](MetaConfig::exmem_budget) — the pre-adaptive
    /// behaviour, kept for A/B comparison.
    pub adaptive_budget: bool,
    /// Decision-latency signal (max of the activation-latency EWMA and
    /// the queue-wait p95, simulated seconds) at or above which the
    /// budget regime tightens.
    pub budget_tight_enter_delay: f64,
    /// Signal below which the tight budget regime may be left (the
    /// hysteresis band's lower edge).
    pub budget_tight_exit_delay: f64,
    /// The reduced EX-MEM budget used while the budget regime is tight.
    pub exmem_tight_budget: SearchBudget,
}

impl Default for MetaConfig {
    /// The [`fitted`](MetaConfig::fitted) thresholds: heavy means
    /// arrivals sustained above ~1.49/s *and* a platform more than ~89 %
    /// busy, with the hysteresis band down to ~0.80/s / ~75 %. Exact
    /// search is allowed for up to 3 jobs with ≥ ~5.07 s of slack each
    /// under the standard online budget — *adaptively tightened* to an
    /// eighth of it while the pipeline's decision-latency signal sits
    /// above 1.5 s (relaxing below 0.5 s).
    fn default() -> Self {
        MetaConfig::fitted()
    }
}

impl MetaConfig {
    /// The thresholds fitted by `repro tune --quick --seed 2020` against
    /// the original hand-picked thresholds (enter 1.5/s & 85 %, exit
    /// 0.9/s & 60 %, slack ≥ 4 s): the grid + seeded random search over
    /// enter/exit rates, utilizations and the exact-regime slack floor
    /// tied them on acceptance (0.511) and beat them on the energy
    /// tiebreak (9.45 vs 9.54 J/job over the poisson/bursty/diurnal
    /// tuning streams) — a slightly higher utilization bar with a
    /// stricter slack floor sends fewer marginal activations into the
    /// heavy/exact regimes. The fitting run's deltas are recorded in
    /// CHANGES.md; the committed `TUNE_baseline.json` is the
    /// post-adoption re-run whose shipped row equals this winner (the
    /// fixed point). The budget-regime knobs keep their engineered
    /// values.
    pub fn fitted() -> Self {
        MetaConfig {
            heavy_enter_rate: 1.4875506346146516,
            heavy_exit_rate: 0.8027461905730141,
            heavy_enter_util: 0.8878444729816208,
            heavy_exit_util: 0.747576915676607,
            exact_max_jobs: 3,
            exact_max_queue: 1,
            exact_min_slack: 5.074790995588909,
            exmem_budget: SearchBudget::online(),
            adaptive_budget: true,
            budget_tight_enter_delay: 1.5,
            budget_tight_exit_delay: 0.5,
            // The tight regime keeps the online rank cap: shrinking the
            // work budget 8× without capping the per-node fan-out would
            // leave even less budget to survive wide enumerations.
            exmem_tight_budget: SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS / 8)
                .with_rank_cap(SearchBudget::ONLINE_RANK_CAP),
        }
    }

    /// Checks the configuration invariants (enter thresholds above exit
    /// thresholds, sane ranges).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("heavy_enter_rate", self.heavy_enter_rate),
            ("heavy_exit_rate", self.heavy_exit_rate),
            ("exact_min_slack", self.exact_min_slack),
            ("budget_tight_enter_delay", self.budget_tight_enter_delay),
            ("budget_tight_exit_delay", self.budget_tight_exit_delay),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and ≥ 0, got {v}"));
            }
        }
        for (name, v) in [
            ("heavy_enter_util", self.heavy_enter_util),
            ("heavy_exit_util", self.heavy_exit_util),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if self.heavy_exit_rate > self.heavy_enter_rate {
            return Err(format!(
                "heavy rate thresholds reversed: exit {} > enter {}",
                self.heavy_exit_rate, self.heavy_enter_rate
            ));
        }
        if self.heavy_exit_util > self.heavy_enter_util {
            return Err(format!(
                "heavy utilization thresholds reversed: exit {} > enter {}",
                self.heavy_exit_util, self.heavy_enter_util
            ));
        }
        if self.exact_max_jobs == 0 {
            return Err("exact_max_jobs must be at least 1".to_string());
        }
        if self.budget_tight_exit_delay > self.budget_tight_enter_delay {
            return Err(format!(
                "budget delay thresholds reversed: exit {} > enter {}",
                self.budget_tight_exit_delay, self.budget_tight_enter_delay
            ));
        }
        Ok(())
    }
}

/// The telemetry-driven META scheduler: MMKP-MDF under light load, MMKP-LR
/// under heavy load, budgeted anytime EX-MEM when the problem is small
/// and slack is generous.
///
/// Registered in [`standard_registry`](crate::standard_registry) under
/// `"META"`, so every registry consumer — suites, sweeps, the admission
/// grid, the repro binary — picks it up with zero further changes.
///
/// # Examples
///
/// ```
/// use amrm_baselines::MetaScheduler;
/// use amrm_core::Scheduler;
/// use amrm_workload::scenarios;
///
/// // With an idle default context META sits in the calm regimes and
/// // matches the exact optimum on the motivational example.
/// let jobs = scenarios::s1_jobs_at_t1();
/// let schedule = MetaScheduler::new()
///     .schedule_at(&jobs, &scenarios::platform(), 1.0)
///     .expect("feasible");
/// let rho1 = 1.0 - 1.0 / 5.3;
/// assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct MetaScheduler {
    config: MetaConfig,
    regime: Regime,
    switches: usize,
    budget_regime: BudgetRegime,
    budget_switches: usize,
    /// The context budget handed to EX-MEM at the most recent exact-regime
    /// activation (the configured budget until then).
    last_exact_budget: SearchBudget,
    mdf: MmkpMdf,
    lr: MmkpLr,
    exmem: ExMem,
}

impl MetaScheduler {
    /// Creates a META scheduler with the [`MetaConfig::default`]
    /// thresholds.
    pub fn new() -> Self {
        MetaScheduler::with_config(MetaConfig::default())
    }

    /// Creates a META scheduler with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// (see [`MetaConfig::validate`]).
    pub fn with_config(config: MetaConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid MetaConfig: {msg}");
        }
        MetaScheduler {
            config,
            regime: Regime::Light,
            switches: 0,
            budget_regime: BudgetRegime::Generous,
            budget_switches: 0,
            last_exact_budget: config.exmem_budget,
            mdf: MmkpMdf::new(),
            lr: MmkpLr::new(),
            exmem: ExMem::new().with_budget(config.exmem_budget),
        }
    }

    /// Creates a META scheduler with the [`MetaConfig::fitted`]
    /// thresholds — the configuration the `repro tune` search settled on.
    pub fn fitted() -> Self {
        MetaScheduler::with_config(MetaConfig::fitted())
    }

    /// Creates a META scheduler with the default thresholds but a *fixed*
    /// EX-MEM budget — the pre-adaptive configuration, kept as the A/B
    /// reference the budget-adaptive default is bench-pinned against.
    pub fn with_fixed_budget() -> Self {
        MetaScheduler::with_config(MetaConfig {
            adaptive_budget: false,
            ..MetaConfig::default()
        })
    }

    /// The configured thresholds.
    pub fn config(&self) -> &MetaConfig {
        &self.config
    }

    /// The regime the most recent activation ran in.
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// Regime switches since construction — the flap count the hysteresis
    /// keeps low.
    pub fn switches(&self) -> usize {
        self.switches
    }

    /// The budget regime the most recent activation ran under.
    pub fn budget_regime(&self) -> BudgetRegime {
        self.budget_regime
    }

    /// Budget-regime switches since construction.
    pub fn budget_switches(&self) -> usize {
        self.budget_switches
    }

    /// The context [`SearchBudget`] handed to EX-MEM at the most recent
    /// exact-regime activation (the configured generous budget before the
    /// first one).
    pub fn last_exact_budget(&self) -> SearchBudget {
        self.last_exact_budget
    }

    /// The budget regime the decision-latency signal calls for, honouring
    /// the same enter/exit hysteresis discipline as the algorithm regime.
    /// The signal — `max(activation-latency EWMA, queue-wait p95)` — is
    /// derived from simulated time only, so the regime sequence is
    /// deterministic per stream seed.
    fn target_budget_regime(&self, ctx: &SchedulingContext) -> BudgetRegime {
        let t = &ctx.telemetry;
        let delay = t.activation_latency.max(t.queue_wait_p95);
        let tight = if self.budget_regime == BudgetRegime::Tight {
            delay >= self.config.budget_tight_exit_delay
        } else {
            delay >= self.config.budget_tight_enter_delay
        };
        if tight {
            BudgetRegime::Tight
        } else {
            BudgetRegime::Generous
        }
    }

    /// The regime the signals call for, honouring the heavy-regime
    /// hysteresis relative to the current regime.
    fn target_regime(&self, jobs: &JobSet, ctx: &SchedulingContext) -> Regime {
        let t = &ctx.telemetry;
        let heavy = if self.regime == Regime::Heavy {
            // Leave only once either signal drops below its exit
            // threshold (the hysteresis band).
            t.arrival_rate >= self.config.heavy_exit_rate
                && t.utilization >= self.config.heavy_exit_util
        } else {
            t.arrival_rate >= self.config.heavy_enter_rate
                && t.utilization >= self.config.heavy_enter_util
        };
        if heavy {
            return Regime::Heavy;
        }
        let shallow = jobs.len() <= self.config.exact_max_jobs
            && t.queue_depth <= self.config.exact_max_queue;
        let generous = jobs
            .iter()
            .all(|job| job.deadline() - ctx.now >= self.config.exact_min_slack);
        if shallow && generous {
            Regime::Exact
        } else {
            Regime::Light
        }
    }
}

impl Default for MetaScheduler {
    fn default() -> Self {
        MetaScheduler::new()
    }
}

impl Scheduler for MetaScheduler {
    fn name(&self) -> &str {
        "META"
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        let target = self.target_regime(jobs, ctx);
        if target != self.regime {
            self.regime = target;
            self.switches += 1;
            if ctx.trace.is_enabled() {
                // The switch verdict plus the signals that triggered it.
                ctx.trace.emit(
                    JournalEvent::at(ctx.now, EventKind::RegimeSwitch)
                        .detail(target as u32)
                        .value(ctx.telemetry.arrival_rate)
                        .aux(ctx.telemetry.utilization),
                );
            }
        }
        if self.config.adaptive_budget {
            // The budget regime tracks every activation — like the
            // algorithm regime — so its hysteresis state does not depend
            // on which algorithm happened to run.
            let budget_target = self.target_budget_regime(ctx);
            if budget_target != self.budget_regime {
                self.budget_regime = budget_target;
                self.budget_switches += 1;
                if ctx.trace.is_enabled() {
                    let t = &ctx.telemetry;
                    ctx.trace.emit(
                        JournalEvent::at(ctx.now, EventKind::BudgetSwitch)
                            .detail(budget_target as u32)
                            .value(t.activation_latency.max(t.queue_wait_p95)),
                    );
                }
            }
        }
        match self.regime {
            Regime::Light => self.mdf.schedule(jobs, platform, ctx),
            Regime::Heavy => self.lr.schedule(jobs, platform, ctx),
            // The anytime EX-MEM composes its own budget with the
            // context's and falls back to MDF's answer on expiry. Under
            // the adaptive budget regime the context budget is tightened
            // first while the pipeline's decision latency is high.
            Regime::Exact => {
                if !self.config.adaptive_budget {
                    // The fixed path hands the context through unchanged;
                    // EX-MEM composes its own configured budget with it —
                    // record that composition so the accessor's contract
                    // ("the budget of the most recent exact activation")
                    // holds on both paths.
                    self.last_exact_budget = self.config.exmem_budget.tightest(ctx.budget);
                    return self.exmem.schedule(jobs, platform, ctx);
                }
                let regime_budget = match self.budget_regime {
                    BudgetRegime::Generous => self.config.exmem_budget,
                    BudgetRegime::Tight => self.config.exmem_tight_budget,
                };
                let budget = regime_budget.tightest(ctx.budget);
                self.last_exact_budget = budget;
                let ctx = ctx.clone().with_budget(budget);
                self.exmem.schedule(jobs, platform, &ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_core::TelemetrySnapshot;
    use amrm_model::{Job, JobId};
    use amrm_workload::scenarios;

    fn ctx_with(rate: f64, util: f64, now: f64) -> SchedulingContext {
        SchedulingContext::at(now).with_telemetry(TelemetrySnapshot {
            arrival_rate: rate,
            utilization: util,
            ..TelemetrySnapshot::default()
        })
    }

    fn roomy_jobs() -> JobSet {
        JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 20.0, 1.0),
        ])
    }

    #[test]
    fn idle_context_with_generous_slack_runs_exact() {
        let mut meta = MetaScheduler::new();
        let jobs = roomy_jobs();
        let s = meta
            .schedule(&jobs, &scenarios::platform(), &SchedulingContext::at(0.0))
            .unwrap();
        assert_eq!(meta.regime(), Regime::Exact);
        s.validate(&jobs, &scenarios::platform(), 0.0).unwrap();
        // Exact regime means optimal energy on this small instance.
        let opt = ExMem::new()
            .schedule_at(&jobs, &scenarios::platform(), 0.0)
            .unwrap();
        assert!((s.energy(&jobs) - opt.energy(&jobs)).abs() < 1e-9);
    }

    #[test]
    fn tight_slack_falls_back_to_light() {
        let mut meta = MetaScheduler::new();
        // σ2's deadline 5 at t = 1 leaves slack 4 − ε below the default
        // 4 s threshold once time advances past 1.
        let jobs = scenarios::s1_jobs_at_t1();
        let s = meta
            .schedule(&jobs, &scenarios::platform(), &SchedulingContext::at(1.5))
            .unwrap_or_else(|| panic!("light regime must schedule"));
        assert_eq!(meta.regime(), Regime::Light);
        s.validate(&jobs, &scenarios::platform(), 1.5).unwrap();
    }

    #[test]
    fn sustained_overload_enters_heavy_and_hysteresis_holds() {
        let mut meta = MetaScheduler::new();
        let jobs = roomy_jobs();
        let platform = scenarios::platform();
        let c = *meta.config();
        // Signals relative to the (fitted) thresholds, so the test keeps
        // exercising the band wherever a future tune moves it.
        let band_rate = (c.heavy_enter_rate + c.heavy_exit_rate) / 2.0;
        let band_util = (c.heavy_enter_util + c.heavy_exit_util) / 2.0;
        // Both signals above the enter thresholds: heavy.
        assert!(meta
            .schedule(
                &jobs,
                &platform,
                &ctx_with(c.heavy_enter_rate + 0.5, 0.95, 0.0)
            )
            .is_some());
        assert_eq!(meta.regime(), Regime::Heavy);
        let after_enter = meta.switches();
        // Inside the hysteresis band (below enter, above exit): stays.
        for _ in 0..5 {
            meta.schedule(&jobs, &platform, &ctx_with(band_rate, band_util, 0.0));
            assert_eq!(meta.regime(), Regime::Heavy);
        }
        assert_eq!(meta.switches(), after_enter);
        // Below the exit threshold: leaves.
        meta.schedule(
            &jobs,
            &platform,
            &ctx_with(c.heavy_exit_rate / 2.0, band_util, 0.0),
        );
        assert_ne!(meta.regime(), Regime::Heavy);
    }

    #[test]
    fn rate_oscillating_around_the_enter_threshold_does_not_flap() {
        let mut meta = MetaScheduler::new();
        let jobs = roomy_jobs();
        let platform = scenarios::platform();
        let enter = meta.config().heavy_enter_rate;
        // 20 activations oscillating ±0.1 around the enter threshold with
        // a hot platform: one switch into heavy, then the band holds.
        for i in 0..20 {
            let rate = if i % 2 == 0 { enter + 0.1 } else { enter - 0.1 };
            meta.schedule(&jobs, &platform, &ctx_with(rate, 0.95, 0.0));
        }
        assert_eq!(meta.regime(), Regime::Heavy);
        assert_eq!(
            meta.switches(),
            1,
            "hysteresis must absorb an oscillation inside the band"
        );
    }

    #[test]
    fn a_spike_without_utilization_is_not_overload() {
        let mut meta = MetaScheduler::new();
        let jobs = roomy_jobs();
        meta.schedule(&jobs, &scenarios::platform(), &ctx_with(5.0, 0.1, 0.0));
        assert_ne!(meta.regime(), Regime::Heavy);
    }

    #[test]
    fn deep_queue_blocks_the_exact_regime() {
        let mut meta = MetaScheduler::new();
        let jobs = roomy_jobs();
        let ctx = SchedulingContext::at(0.0).with_telemetry(TelemetrySnapshot {
            queue_depth: 5,
            ..TelemetrySnapshot::default()
        });
        meta.schedule(&jobs, &scenarios::platform(), &ctx);
        assert_eq!(meta.regime(), Regime::Light);
    }

    #[test]
    fn regime_names_are_distinct() {
        let names = [Regime::Light, Regime::Heavy, Regime::Exact].map(Regime::name);
        assert_eq!(names, ["light", "heavy", "exact"]);
        let budget_names = [BudgetRegime::Generous, BudgetRegime::Tight].map(BudgetRegime::name);
        assert_eq!(budget_names, ["generous", "tight"]);
    }

    fn ctx_with_delay(latency: f64, wait_p95: f64) -> SchedulingContext {
        SchedulingContext::at(0.0).with_telemetry(TelemetrySnapshot {
            activation_latency: latency,
            queue_wait_p95: wait_p95,
            ..TelemetrySnapshot::default()
        })
    }

    #[test]
    fn high_decision_latency_tightens_the_exact_budget() {
        let mut meta = MetaScheduler::new();
        let jobs = roomy_jobs();
        let platform = scenarios::platform();
        // Idle pipeline: exact regime under the full configured budget.
        meta.schedule(&jobs, &platform, &SchedulingContext::at(0.0));
        assert_eq!(meta.regime(), Regime::Exact);
        assert_eq!(meta.budget_regime(), BudgetRegime::Generous);
        assert_eq!(meta.last_exact_budget(), meta.config().exmem_budget);
        // A pipeline holding requests past the enter threshold tightens.
        let enter = meta.config().budget_tight_enter_delay;
        meta.schedule(&jobs, &platform, &ctx_with_delay(enter + 0.1, 0.0));
        assert_eq!(meta.budget_regime(), BudgetRegime::Tight);
        assert_eq!(meta.last_exact_budget(), meta.config().exmem_tight_budget);
        // The queue-wait percentile drives the same signal.
        let mut via_wait = MetaScheduler::new();
        via_wait.schedule(&jobs, &platform, &ctx_with_delay(0.0, enter + 0.1));
        assert_eq!(via_wait.budget_regime(), BudgetRegime::Tight);
    }

    #[test]
    fn budget_regime_hysteresis_absorbs_oscillation() {
        let mut meta = MetaScheduler::new();
        let jobs = roomy_jobs();
        let platform = scenarios::platform();
        let enter = meta.config().budget_tight_enter_delay;
        let exit = meta.config().budget_tight_exit_delay;
        // Oscillating around the enter threshold, always above exit: one
        // switch into tight, then the band holds.
        for i in 0..20 {
            let delay = if i % 2 == 0 { enter + 0.1 } else { enter - 0.1 };
            meta.schedule(&jobs, &platform, &ctx_with_delay(delay, 0.0));
        }
        assert_eq!(meta.budget_regime(), BudgetRegime::Tight);
        assert_eq!(
            meta.budget_switches(),
            1,
            "budget hysteresis must absorb an oscillation inside the band"
        );
        // Dropping below the exit threshold relaxes the budget again.
        meta.schedule(&jobs, &platform, &ctx_with_delay(exit - 0.1, 0.0));
        assert_eq!(meta.budget_regime(), BudgetRegime::Generous);
        assert_eq!(meta.budget_switches(), 2);
    }

    #[test]
    fn fixed_budget_config_never_switches_budget_regimes() {
        let mut meta = MetaScheduler::with_fixed_budget();
        let jobs = roomy_jobs();
        let platform = scenarios::platform();
        meta.schedule(&jobs, &platform, &ctx_with_delay(100.0, 100.0));
        assert_eq!(meta.budget_regime(), BudgetRegime::Generous);
        assert_eq!(meta.budget_switches(), 0);
    }

    #[test]
    fn adaptive_and_fixed_budgets_agree_while_the_pipeline_is_prompt() {
        // With a prompt pipeline (zero decision-latency signal — exactly
        // what Immediate/BatchK(1) admission produces) the budget regime
        // never tightens, so budget-adaptive META returns bit-identical
        // schedules to the fixed-budget configuration.
        let jobs = roomy_jobs();
        let platform = scenarios::platform();
        let ctx = SchedulingContext::at(0.0).with_budget(SearchBudget::online());
        let a = MetaScheduler::new()
            .schedule(&jobs, &platform, &ctx)
            .unwrap();
        let b = MetaScheduler::with_fixed_budget()
            .schedule(&jobs, &platform, &ctx)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reversed_budget_thresholds_fail_validation() {
        assert!(MetaConfig {
            budget_tight_enter_delay: 0.5,
            budget_tight_exit_delay: 1.0,
            ..MetaConfig::default()
        }
        .validate()
        .is_err());
        assert!(MetaConfig {
            budget_tight_enter_delay: f64::NAN,
            ..MetaConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid MetaConfig")]
    fn reversed_thresholds_panic() {
        let _ = MetaScheduler::with_config(MetaConfig {
            heavy_enter_rate: 0.5,
            heavy_exit_rate: 1.0,
            ..MetaConfig::default()
        });
    }

    #[test]
    fn config_validation_catches_bad_ranges() {
        assert!(MetaConfig::default().validate().is_ok());
        assert!(MetaConfig {
            heavy_enter_util: 1.5,
            ..MetaConfig::default()
        }
        .validate()
        .is_err());
        assert!(MetaConfig {
            exact_max_jobs: 0,
            ..MetaConfig::default()
        }
        .validate()
        .is_err());
        assert!(MetaConfig {
            heavy_enter_rate: f64::NAN,
            ..MetaConfig::default()
        }
        .validate()
        .is_err());
    }
}
