//! Incremental mapper: the related-work RM class the paper's introduction
//! describes — "an incremental RM allocates the new application on free
//! resources; if available resources do not suffice, the RM rejects the
//! application" (cf. Singh et al., Weichslgartner et al.).
//!
//! Running jobs are never remapped: each keeps the operating point chosen
//! at its own admission. Only the newly arrived job gets a point, picked
//! as the cheapest deadline-feasible one that fits the *currently free*
//! cores. This is the weakest baseline — it trades all adaptivity for a
//! near-zero scheduling overhead — and quantifies how much admission
//! quality the MMKP formulations add.

use std::collections::HashMap;

use amrm_core::{Scheduler, SchedulingContext};
use amrm_model::{JobId, JobMapping, JobSet, Schedule, Segment};
use amrm_platform::{Platform, ResourceVec, EPS};

/// The incremental (free-resources-only) mapper.
///
/// This scheduler is *stateful*: it remembers the operating point it
/// assigned to each job at admission and reuses it at later activations.
/// State is keyed by [`JobId`], so one instance must not be shared between
/// independent runtime managers.
///
/// # Examples
///
/// ```
/// use amrm_baselines::IncrementalMapper;
/// use amrm_core::{Scheduler, SchedulingContext};
/// use amrm_workload::scenarios;
///
/// // At t = 1 in scenario S1, σ1 already owns 2L1B; only 1 big core is
/// // free and no λ2 point on one big core meets the deadline — rejected.
/// let mut inc = IncrementalMapper::new();
/// let platform = scenarios::platform();
/// let first = amrm_model::JobSet::new(vec![amrm_model::Job::new(
///     amrm_model::JobId(1), scenarios::lambda1(), 0.0, 9.0, 1.0,
/// )]);
/// assert!(inc.schedule_at(&first, &platform, 0.0).is_some());
/// assert!(inc.schedule_at(&scenarios::s1_jobs_at_t1(), &platform, 1.0).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalMapper {
    assigned: HashMap<JobId, usize>,
}

impl IncrementalMapper {
    /// Creates an incremental mapper with no remembered assignments.
    pub fn new() -> Self {
        IncrementalMapper::default()
    }

    /// The remembered point of `job`, if it was admitted by this mapper.
    pub fn assignment(&self, job: JobId) -> Option<usize> {
        self.assigned.get(&job).copied()
    }
}

impl Scheduler for IncrementalMapper {
    fn name(&self) -> &str {
        "INCREMENTAL"
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        let now = ctx.now;
        // Drop state for jobs that finished since the last activation.
        self.assigned.retain(|id, _| jobs.get(*id).is_some());

        // Occupied resources: all previously admitted jobs keep running.
        let mut used = ResourceVec::zeros(platform.num_types());
        for job in jobs.iter() {
            if let Some(&p) = self.assigned.get(&job.id()) {
                used += job.point(p).resources();
            }
        }

        // Assign the new job(s) — normally exactly one — on free cores.
        let mut fresh: Vec<(JobId, usize)> = Vec::new();
        for job in jobs.iter() {
            if self.assigned.contains_key(&job.id()) {
                continue;
            }
            let free = platform.counts().saturating_sub(&used);
            let choice = (0..job.app().num_points())
                .filter(|&j| {
                    job.point(j).resources().fits_within(&free) && job.meets_deadline_with(j, now)
                })
                .min_by(|&a, &b| job.remaining_energy(a).total_cmp(&job.remaining_energy(b)));
            let Some(point) = choice else {
                // Roll back: an admission must be all-or-nothing, and state
                // must not leak for a rejected activation.
                return None;
            };
            used += job.point(point).resources();
            fresh.push((job.id(), point));
        }

        // All previously admitted jobs still meet their deadlines by
        // construction (they were feasible at admission and keep their
        // cores); materialize the fixed schedule with split-at-completion
        // segments.
        let mut assignment: HashMap<JobId, usize> = self.assigned.clone();
        assignment.extend(fresh.iter().copied());

        let mut completions: Vec<(JobId, f64)> = jobs
            .iter()
            .map(|job| (job.id(), now + job.remaining_time(assignment[&job.id()])))
            .collect();
        // Deadline check also for retained jobs: progress tracking keeps
        // them on schedule, but a defensive check is cheap.
        for job in jobs.iter() {
            let end = completions
                .iter()
                .find(|(id, _)| *id == job.id())
                .expect("every job has a completion")
                .1;
            if end > job.deadline() + EPS {
                return None;
            }
        }
        completions.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut schedule = Schedule::new();
        let mut start = now;
        for &(_, end) in &completions {
            if end - start <= EPS {
                continue;
            }
            let mappings: Vec<JobMapping> = completions
                .iter()
                .filter(|(_, c)| *c > start + EPS)
                .map(|(id, _)| JobMapping::new(*id, assignment[id]))
                .collect();
            schedule.push(Segment::new(start, end, mappings));
            start = end;
        }

        // Commit state only on success.
        self.assigned = assignment;
        Some(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::{Job, JobSet};
    use amrm_workload::scenarios;

    #[test]
    fn first_job_gets_cheapest_feasible_point() {
        let mut inc = IncrementalMapper::new();
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        let s = inc.schedule_at(&jobs, &platform, 0.0).unwrap();
        s.validate(&jobs, &platform, 0.0).unwrap();
        assert!((s.energy(&jobs) - 8.9).abs() < 1e-9);
        assert_eq!(inc.assignment(JobId(1)), Some(6)); // 2L1B
    }

    #[test]
    fn second_job_limited_to_free_resources() {
        let mut inc = IncrementalMapper::new();
        let platform = scenarios::platform();
        // Admit σ1 with a weak deadline so it picks frugal 2L (10.3 s).
        let first = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            30.0,
            1.0,
        )]);
        inc.schedule_at(&first, &platform, 0.0).unwrap();
        assert_eq!(inc.assignment(JobId(1)), Some(1)); // 2L, 7.01 J

        // σ2 arrives: only the two big cores are free.
        let both = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 30.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 12.0, 1.0),
        ]);
        let s = inc.schedule_at(&both, &platform, 0.0).unwrap();
        s.validate(&both, &platform, 0.0).unwrap();
        // Cheapest big-core-only λ2 point: 1B (7.55 J).
        assert_eq!(inc.assignment(JobId(2)), Some(2));
    }

    #[test]
    fn rejects_when_free_resources_do_not_suffice() {
        let mut inc = IncrementalMapper::new();
        let platform = scenarios::platform();
        let first = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        inc.schedule_at(&first, &platform, 0.0).unwrap(); // takes 2L1B
        assert!(inc
            .schedule_at(&scenarios::s1_jobs_at_t1(), &platform, 1.0)
            .is_none());
        // Rejection must not leak state for σ2.
        assert!(inc.assignment(JobId(2)).is_none());
        assert_eq!(inc.assignment(JobId(1)), Some(6));
    }

    #[test]
    fn state_is_pruned_for_finished_jobs() {
        let mut inc = IncrementalMapper::new();
        let platform = scenarios::platform();
        let first = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        inc.schedule_at(&first, &platform, 0.0).unwrap();
        // σ1 finished; a new activation without it clears the slot and the
        // full platform is free again for σ2.
        let second = JobSet::new(vec![Job::new(
            JobId(2),
            scenarios::lambda2(),
            6.0,
            12.0,
            1.0,
        )]);
        let s = inc.schedule_at(&second, &platform, 6.0).unwrap();
        s.validate(&second, &platform, 6.0).unwrap();
        assert!(inc.assignment(JobId(1)).is_none());
        // Cheapest λ2 point overall is 1L (2.00 J) — feasible in 6 s? No:
        // 10 s > 6 s window... deadline 12, now 6 → 1L finishes at 16 ✗;
        // 2L finishes at 13 ✗; 2L1B at 9 ✓ (5.73 J); 1L1B at 9.5 ✓ (6.44).
        assert_eq!(inc.assignment(JobId(2)), Some(6));
    }

    #[test]
    fn empty_set_resets_cleanly() {
        let mut inc = IncrementalMapper::new();
        let platform = scenarios::platform();
        let s = inc.schedule_at(&JobSet::default(), &platform, 0.0).unwrap();
        assert!(s.is_empty());
    }
}
