//! EX-MEM: exhaustive segment-by-segment search with memoization.
//!
//! The paper's optimal reference: it "exhaustively checks all possible
//! mappings for each of the mapping segments; in each constructed mapping
//! segment it cuts the segment on the shortest job, and generates the next
//! mapping segment", memoizing "the best energy consumption for a given
//! current state (a pair of jobs, their progress rates, and time)".
//!
//! This implementation keeps the search *exact* while making it fast enough
//! for Rust-scale sweeps:
//!
//! * per-state memoization on quantized `(time, {job, ρ})` keys, storing
//!   either the exact optimum (with the optimal first-segment assignment,
//!   for schedule reconstruction) or a proven lower bound;
//! * admissible branch-and-bound: a branch is cut when the energy spent so
//!   far plus `Σ_jobs min_point(ξ)·ρ` cannot beat the incumbent — this
//!   bound never overestimates, so optimality is preserved;
//! * incumbent seeding with the MMKP-MDF solution: the heuristic's energy
//!   is a valid upper bound and prunes most of the tree immediately.

use std::collections::HashMap;

use amrm_core::{MmkpMdf, Scheduler};
use amrm_model::{Job, JobMapping, JobSet, Schedule, Segment};
use amrm_platform::{Platform, ResourceVec, EPS};

/// Quantization step for memoization keys (progress ratios and time).
const KEY_QUANTUM: f64 = 1e-9;
/// Remaining ratio below which a job counts as finished.
const RHO_EPS: f64 = 1e-9;

/// The exhaustive optimal scheduler (EX-MEM).
///
/// # Examples
///
/// ```
/// use amrm_baselines::ExMem;
/// use amrm_core::Scheduler;
/// use amrm_workload::scenarios;
///
/// // The adaptive schedule of Fig. 1(c) is optimal for S1 at t = 1.
/// let jobs = scenarios::s1_jobs_at_t1();
/// let schedule = ExMem::new()
///     .schedule(&jobs, &scenarios::platform(), 1.0)
///     .expect("feasible");
/// let rho1 = 1.0 - 1.0 / 5.3;
/// assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExMem {
    seed_with_mdf: bool,
    nodes_explored: u64,
}

/// One memoized result.
#[derive(Debug, Clone)]
enum MemoVal {
    /// Exact optimum from this state, with the optimal first-segment
    /// assignment (`None` = job suspended) in state order.
    Exact {
        energy: f64,
        choice: Vec<Option<usize>>,
    },
    /// The optimum from this state is ≥ this bound (search with that budget
    /// found nothing better).
    Bound { at_least: f64 },
    /// No feasible completion exists at all.
    Infeasible,
}

type Key = (u64, Vec<(u32, u64)>);

struct SearchCtx<'a> {
    jobs: &'a [Job],
    platform: &'a Platform,
    /// Per job: operating points that fit the platform, by index.
    options: Vec<Vec<usize>>,
    /// Per job: minimum full-execution energy over its feasible points.
    min_energy: Vec<f64>,
    /// Per job: minimum full-execution time over its feasible points.
    min_time: Vec<f64>,
    memo: HashMap<Key, MemoVal>,
    nodes: u64,
}

impl ExMem {
    /// Creates an EX-MEM scheduler (incumbent-seeded by default).
    pub fn new() -> Self {
        ExMem {
            seed_with_mdf: true,
            nodes_explored: 0,
        }
    }

    /// Disables MDF incumbent seeding (pure exhaustive search with
    /// memoization — slower, same result; used by ablation benches).
    pub fn without_seed(mut self) -> Self {
        self.seed_with_mdf = false;
        self
    }

    /// Search nodes explored by the most recent
    /// [`schedule`](Scheduler::schedule) call.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes_explored
    }
}

impl Scheduler for ExMem {
    fn name(&self) -> &str {
        "EX-MEM"
    }

    fn schedule(&mut self, jobs: &JobSet, platform: &Platform, now: f64) -> Option<Schedule> {
        if jobs.is_empty() {
            return Some(Schedule::new());
        }

        let job_slice = jobs.jobs();
        let mut options = Vec::with_capacity(job_slice.len());
        let mut min_energy = Vec::with_capacity(job_slice.len());
        let mut min_time = Vec::with_capacity(job_slice.len());
        for job in job_slice {
            let opts: Vec<usize> = (0..job.app().num_points())
                .filter(|&j| job.point(j).resources().fits_within(platform.counts()))
                .collect();
            if opts.is_empty() {
                return None;
            }
            min_energy.push(
                opts.iter()
                    .map(|&j| job.point(j).energy())
                    .fold(f64::INFINITY, f64::min),
            );
            min_time.push(
                opts.iter()
                    .map(|&j| job.point(j).time())
                    .fold(f64::INFINITY, f64::min),
            );
            options.push(opts);
        }

        let mut ctx = SearchCtx {
            jobs: job_slice,
            platform,
            options,
            min_energy,
            min_time,
            memo: HashMap::new(),
            nodes: 0,
        };

        // Incumbent: MDF's energy is an upper bound on the optimum.
        let budget = if self.seed_with_mdf {
            MmkpMdf::new()
                .schedule(jobs, platform, now)
                .map(|s| s.energy(jobs) + 1e-7)
                .unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        };

        let state: Vec<(usize, f64)> = (0..job_slice.len())
            .map(|i| (i, job_slice[i].remaining()))
            .collect();
        let result = solve(&mut ctx, &state, now, budget);
        self.nodes_explored = ctx.nodes;
        result?;

        let schedule = reconstruct(&ctx, state, now);
        debug_assert!(schedule.validate(jobs, platform, now).is_ok());
        Some(schedule)
    }
}

fn key_of(state: &[(usize, f64)], t: f64) -> Key {
    (
        (t / KEY_QUANTUM).round() as u64,
        state
            .iter()
            .map(|&(i, rho)| (i as u32, (rho / KEY_QUANTUM).round() as u64))
            .collect(),
    )
}

/// Admissible lower bound on the energy needed to finish `state`.
fn lower_bound(ctx: &SearchCtx<'_>, state: &[(usize, f64)]) -> f64 {
    state.iter().map(|&(i, rho)| ctx.min_energy[i] * rho).sum()
}

/// Returns `false` if some job can no longer meet its deadline even on its
/// fastest point with exclusive resources (admissible feasibility cut).
fn viable(ctx: &SearchCtx<'_>, state: &[(usize, f64)], t: f64) -> bool {
    state
        .iter()
        .all(|&(i, rho)| t + ctx.min_time[i] * rho <= ctx.jobs[i].deadline() + EPS)
}

/// One enumerated first-segment candidate.
struct Candidate {
    choice: Vec<Option<usize>>,
    seg_energy: f64,
    next_state: Vec<(usize, f64)>,
    next_t: f64,
    bound: f64,
}

/// Exact minimum energy to finish `state` from time `t`, if it is `<
/// budget`. Memoizes exact values and failure bounds.
fn solve(ctx: &mut SearchCtx<'_>, state: &[(usize, f64)], t: f64, budget: f64) -> Option<f64> {
    if state.is_empty() {
        return if budget > 0.0 { Some(0.0) } else { None };
    }
    if !viable(ctx, state, t) {
        return None;
    }
    if lower_bound(ctx, state) >= budget {
        return None;
    }

    let key = key_of(state, t);
    match ctx.memo.get(&key) {
        Some(MemoVal::Exact { energy, .. }) => {
            return if *energy < budget {
                Some(*energy)
            } else {
                None
            };
        }
        Some(MemoVal::Infeasible) => return None,
        Some(MemoVal::Bound { at_least }) if budget <= *at_least + EPS => return None,
        _ => {}
    }

    ctx.nodes += 1;

    // Enumerate all joint first-segment assignments.
    let mut candidates = Vec::new();
    enumerate(
        ctx,
        state,
        t,
        0,
        &mut vec![None; state.len()],
        &ResourceVec::zeros(ctx.platform.num_types()),
        &mut candidates,
    );
    // Best-first exploration makes the local branch-and-bound effective.
    candidates.sort_by(|a, b| a.bound.total_cmp(&b.bound));

    let mut local_best = budget;
    let mut best_choice: Option<Vec<Option<usize>>> = None;
    let mut pruned = false;
    for cand in candidates {
        if cand.bound >= local_best {
            pruned = true;
            continue;
        }
        if let Some(sub) = solve(
            ctx,
            &cand.next_state,
            cand.next_t,
            local_best - cand.seg_energy,
        ) {
            let total = cand.seg_energy + sub;
            if total < local_best {
                local_best = total;
                best_choice = Some(cand.choice);
            }
        }
    }

    match best_choice {
        Some(choice) => {
            ctx.memo.insert(
                key,
                MemoVal::Exact {
                    energy: local_best,
                    choice,
                },
            );
            Some(local_best)
        }
        None => {
            let val = if pruned || budget.is_finite() {
                MemoVal::Bound { at_least: budget }
            } else {
                MemoVal::Infeasible
            };
            ctx.memo.insert(key, val);
            None
        }
    }
}

/// Depth-first enumeration of per-job choices (run a feasible point or
/// suspend), with component-wise resource pruning; complete assignments
/// with at least one running job become [`Candidate`]s.
fn enumerate(
    ctx: &SearchCtx<'_>,
    state: &[(usize, f64)],
    t: f64,
    depth: usize,
    choice: &mut Vec<Option<usize>>,
    used: &ResourceVec,
    out: &mut Vec<Candidate>,
) {
    if depth == state.len() {
        push_candidate(ctx, state, t, choice, out);
        return;
    }
    let (ji, _) = state[depth];
    // Option A: suspend this job in the first segment.
    choice[depth] = None;
    enumerate(ctx, state, t, depth + 1, choice, used, out);
    // Option B: run one of its feasible points.
    for &cfg in &ctx.options[ji] {
        let demand = used + ctx.jobs[ji].point(cfg).resources();
        if !demand.fits_within(ctx.platform.counts()) {
            continue;
        }
        choice[depth] = Some(cfg);
        enumerate(ctx, state, t, depth + 1, choice, &demand, out);
    }
    choice[depth] = None;
}

fn push_candidate(
    ctx: &SearchCtx<'_>,
    state: &[(usize, f64)],
    t: f64,
    choice: &[Option<usize>],
    out: &mut Vec<Candidate>,
) {
    // Segment is cut at the earliest completion among running jobs.
    let mut delta = f64::INFINITY;
    for (slot, &(ji, rho)) in state.iter().enumerate() {
        if let Some(cfg) = choice[slot] {
            delta = delta.min(ctx.jobs[ji].point(cfg).time() * rho);
        }
    }
    if !delta.is_finite() {
        return; // everybody suspended: time would not advance
    }

    let next_t = t + delta;
    let mut seg_energy = 0.0;
    let mut next_state = Vec::with_capacity(state.len());
    for (slot, &(ji, rho)) in state.iter().enumerate() {
        match choice[slot] {
            Some(cfg) => {
                let p = ctx.jobs[ji].point(cfg);
                seg_energy += p.energy() * delta / p.time();
                let rho2 = rho - delta / p.time();
                if rho2 > RHO_EPS {
                    next_state.push((ji, rho2));
                } else if next_t > ctx.jobs[ji].deadline() + EPS {
                    return; // completes past its deadline
                }
            }
            None => next_state.push((ji, rho)),
        }
    }
    if !viable(ctx, &next_state, next_t) {
        return;
    }
    let bound = seg_energy + lower_bound(ctx, &next_state);
    out.push(Candidate {
        choice: choice.to_vec(),
        seg_energy,
        next_state,
        next_t,
        bound,
    });
}

/// Rebuilds the optimal schedule by replaying the memoized first-segment
/// choices from the root state.
fn reconstruct(ctx: &SearchCtx<'_>, mut state: Vec<(usize, f64)>, mut t: f64) -> Schedule {
    let mut schedule = Schedule::new();
    while !state.is_empty() {
        let key = key_of(&state, t);
        let Some(MemoVal::Exact { choice, .. }) = ctx.memo.get(&key) else {
            unreachable!("optimal path must be memoized exactly");
        };
        let mut delta = f64::INFINITY;
        for (slot, &(ji, rho)) in state.iter().enumerate() {
            if let Some(cfg) = choice[slot] {
                delta = delta.min(ctx.jobs[ji].point(cfg).time() * rho);
            }
        }
        let mut mappings = Vec::new();
        let mut next_state = Vec::new();
        for (slot, &(ji, rho)) in state.iter().enumerate() {
            match choice[slot] {
                Some(cfg) => {
                    mappings.push(JobMapping::new(ctx.jobs[ji].id(), cfg));
                    let rho2 = rho - delta / ctx.jobs[ji].point(cfg).time();
                    if rho2 > RHO_EPS {
                        next_state.push((ji, rho2));
                    }
                }
                None => next_state.push((ji, rho)),
            }
        }
        schedule.push(Segment::new(t, t + delta, mappings));
        state = next_state;
        t += delta;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::{Application, JobId, JobSet, OperatingPoint};
    use amrm_workload::scenarios;

    #[test]
    fn single_job_is_optimal() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        let platform = scenarios::platform();
        let schedule = ExMem::new().schedule(&jobs, &platform, 0.0).unwrap();
        schedule.validate(&jobs, &platform, 0.0).unwrap();
        assert!((schedule.energy(&jobs) - 8.9).abs() < 1e-6);
    }

    #[test]
    fn fig1c_is_the_optimum_for_s1_at_t1() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = ExMem::new().schedule(&jobs, &platform, 1.0).unwrap();
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6);
    }

    #[test]
    fn s2_feasible_with_same_energy() {
        let jobs = scenarios::s2_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = ExMem::new().schedule(&jobs, &platform, 1.0).unwrap();
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6);
    }

    #[test]
    fn never_worse_than_mdf() {
        // EX-MEM is exact, so on any instance it must be ≤ MDF.
        let platform = scenarios::platform();
        for (d1, d2) in [(9.0, 5.0), (12.0, 6.0), (20.0, 8.0), (9.0, 4.0)] {
            let jobs = JobSet::new(vec![
                Job::new(JobId(1), scenarios::lambda1(), 0.0, d1, 1.0),
                Job::new(JobId(2), scenarios::lambda2(), 0.0, d2, 1.0),
            ]);
            let opt = ExMem::new().schedule(&jobs, &platform, 0.0);
            let heur = MmkpMdf::new().schedule(&jobs, &platform, 0.0);
            if let Some(h) = &heur {
                let o = opt.as_ref().expect("EX-MEM must succeed when MDF does");
                assert!(
                    o.energy(&jobs) <= h.energy(&jobs) + 1e-6,
                    "EX-MEM {} > MDF {} for ({d1},{d2})",
                    o.energy(&jobs),
                    h.energy(&jobs)
                );
            }
        }
    }

    #[test]
    fn seeded_and_unseeded_agree() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let a = ExMem::new().schedule(&jobs, &platform, 1.0).unwrap();
        let b = ExMem::new()
            .without_seed()
            .schedule(&jobs, &platform, 1.0)
            .unwrap();
        assert!((a.energy(&jobs) - b.energy(&jobs)).abs() < 1e-6);
    }

    #[test]
    fn infeasible_case_rejected() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            1.0,
            1.0,
        )]);
        assert!(ExMem::new()
            .schedule(&jobs, &scenarios::platform(), 0.0)
            .is_none());
    }

    #[test]
    fn finds_schedules_where_fixed_reasoning_fails() {
        // S2 at t = 1 (the fixed mapper rejects it — see fixed.rs tests).
        let jobs = scenarios::s2_jobs_at_t1();
        assert!(ExMem::new()
            .schedule(&jobs, &scenarios::platform(), 1.0)
            .is_some());
    }

    #[test]
    fn three_jobs_feasible_and_not_worse_than_mdf() {
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let opt = ExMem::new().schedule(&jobs, &platform, 0.0).unwrap();
        opt.validate(&jobs, &platform, 0.0).unwrap();
        let heur = MmkpMdf::new().schedule(&jobs, &platform, 0.0).unwrap();
        assert!(opt.energy(&jobs) <= heur.energy(&jobs) + 1e-6);
    }

    #[test]
    fn oversized_only_app_rejected() {
        let app = Application::shared(
            "fat",
            vec![OperatingPoint::new(
                amrm_platform::ResourceVec::from_slice(&[4, 0]),
                1.0,
                1.0,
            )],
        );
        let jobs = JobSet::new(vec![Job::new(JobId(1), app, 0.0, 10.0, 1.0)]);
        assert!(ExMem::new()
            .schedule(&jobs, &scenarios::platform(), 0.0)
            .is_none());
    }

    #[test]
    fn node_counter_reports_work() {
        let jobs = scenarios::s1_jobs_at_t1();
        let mut ex = ExMem::new();
        ex.schedule(&jobs, &scenarios::platform(), 1.0).unwrap();
        assert!(ex.nodes_explored() > 0);
    }
}
