//! EX-MEM: exhaustive segment-by-segment search with memoization — now
//! *anytime* and reusable across runtime-manager activations.
//!
//! The paper's optimal reference: it "exhaustively checks all possible
//! mappings for each of the mapping segments; in each constructed mapping
//! segment it cuts the segment on the shortest job, and generates the next
//! mapping segment", memoizing "the best energy consumption for a given
//! current state (a pair of jobs, their progress rates, and time)".
//!
//! This implementation keeps the search *exact* while making it fast enough
//! for Rust-scale sweeps:
//!
//! * per-state memoization on quantized `(time, {job, ρ})` keys, storing
//!   either the exact optimum (with the optimal first-segment assignment,
//!   for schedule reconstruction) or a proven lower bound;
//! * admissible branch-and-bound: a branch is cut when the energy spent so
//!   far plus `Σ_jobs min_point(ξ)·ρ` cannot beat the incumbent — this
//!   bound never overestimates, so optimality is preserved;
//! * incumbent seeding with the MMKP-MDF solution: the heuristic's energy
//!   is a valid upper bound and prunes most of the tree immediately.
//!
//! Two extensions make the exhaustive reference viable *online*:
//!
//! * **memo reuse across activations** — keys are `(time, {JobId, ρ})`,
//!   so states proven at one activation are hits at the next (successive
//!   activations of an online run revisit overlapping job states). A
//!   per-job signature (application identity + deadline) guards validity:
//!   any mismatch clears the table, so reuse never crosses unrelated runs.
//! * **a deterministic anytime mode** — when the
//!   [`SchedulingContext`]'s [`SearchBudget`] (or this instance's own cap)
//!   bounds the search, exploration stops after that many *work units*
//!   (state expansions + enumeration steps; never wall-clock, so budgeted
//!   runs are reproducible per seed). A truncated search returns the best
//!   feasible schedule found so far, falling back to MMKP-MDF's answer
//!   when the budget expires with nothing feasible. Memo soundness is
//!   preserved: results tainted by truncation are stored as upper-bound
//!   (`Anytime`) entries, never as exact optima or infeasibility proofs.
//!
//! Two further extensions make it viable at *scale* (ROADMAP item 3):
//!
//! * **capped candidate ranking** — when the budget carries a finite
//!   [`rank_cap`](SearchBudget::rank_cap), each expanded state scores its
//!   first-segment candidates with the cheap admissible lower bound
//!   (segment energy + per-job minimum-energy completion, no joint
//!   feasibility beyond the segment itself), ranks them, and recurses
//!   into only the top-N. Exactly like budget truncation, a finite cap
//!   taints the subtree: results memoize as `Anytime` upper bounds, never
//!   as exact optima or failure proofs, so soundness is unchanged. With
//!   `rank_cap = usize::MAX` the legacy exhaustive enumeration runs
//!   verbatim (proptest-pinned bit-identical in `tests/exmem_budget.rs`).
//! * **a persistent warm-start cache** — the cross-activation memo lives
//!   in an owned [`MappingCache`] that serializes its proofs (`Exact` +
//!   `Infeasible`) to JSON alongside recorded workload traces, so a
//!   replayed stream warm-starts from proofs instead of re-searching
//!   (see `cache.rs` for the format and the content-based signature
//!   revalidation that replaces pointer identity across the
//!   serialization boundary).
//!
//! With an unbounded budget the search, its exploration order and its
//! results are bit-identical to the pre-anytime EX-MEM (pinned by
//! `tests/exmem_budget.rs`).

use std::collections::{HashMap, HashSet};

use amrm_core::{MmkpMdf, Scheduler, SchedulingContext, SearchBudget};
use amrm_metrics::journal::{EventKind, JournalEvent};
use amrm_model::{Job, JobMapping, JobSet, Schedule, Segment};
use amrm_platform::{Platform, ResourceVec, EPS};

use crate::cache::{Key, MappingCache, MemoVal};

/// Quantization step for memoization keys (progress ratios and time).
const KEY_QUANTUM: f64 = 1e-9;
/// Remaining ratio below which a job counts as finished.
const RHO_EPS: f64 = 1e-9;
/// Memo entries beyond which bounded eviction kicks in (a deterministic
/// size cap: long streams reuse states heavily, but unrelated states from
/// thousands of activations must not accumulate without bound). Crossing
/// the cap evicts the refinable entry classes (`Anytime` upper bounds and
/// incumbent-relative `Bound`s) wholesale and keeps the expensive proofs
/// (`Exact`, `Infeasible`); only if the proofs alone still exceed the cap
/// is the table cleared outright.
const MEMO_CAP: usize = 1 << 20;

/// The exhaustive optimal scheduler (EX-MEM), with memo reuse across
/// activations and a budget-bounded anytime mode.
///
/// # Examples
///
/// ```
/// use amrm_baselines::ExMem;
/// use amrm_core::Scheduler;
/// use amrm_workload::scenarios;
///
/// // The adaptive schedule of Fig. 1(c) is optimal for S1 at t = 1.
/// let jobs = scenarios::s1_jobs_at_t1();
/// let schedule = ExMem::new()
///     .schedule_at(&jobs, &scenarios::platform(), 1.0)
///     .expect("feasible");
/// let rho1 = 1.0 - 1.0 / 5.3;
/// assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct ExMem {
    seed_with_mdf: bool,
    reuse_memo: bool,
    /// This instance's own search cap, combined with the context's budget
    /// via [`SearchBudget::tightest`] at every activation.
    budget: SearchBudget,
    /// Memo entries beyond which bounded eviction runs (see `MEMO_CAP`).
    memo_cap: usize,
    /// The cross-activation memo, its per-job validity signatures, and
    /// the warm (loaded-from-disk) key set — extracted into an owned,
    /// serializable store (see `cache.rs`).
    cache: MappingCache,
    nodes_explored: u64,
    degraded: bool,
    /// Memo entries dropped by cap eviction during the current
    /// activation — reported as one aggregate `memo_evict` journal event.
    last_evicted: usize,
    /// Candidates dropped by the rank cap during the most recent
    /// activation — reported as one aggregate `rank_pruned` event.
    last_rank_pruned: u64,
    /// Conclusive memo hits served from disk-loaded entries during the
    /// most recent activation — reported as one `cache_warm_hit` event.
    last_warm_hits: u64,
}

/// How many candidates past the rank cap the capped enumeration still
/// generates before stopping: ranking needs a margin of slack so the
/// lower-bound sort has something to choose from, but generation must not
/// degenerate back into the exponential full enumeration.
const RANK_OVERSAMPLE: usize = 4;

struct SearchCtx<'a> {
    jobs: &'a [Job],
    platform: &'a Platform,
    /// Per job: operating points that fit the platform, by index.
    options: Vec<Vec<usize>>,
    /// Per job: the same feasible points reordered cheapest-energy-first
    /// (ties by index) — the generation order of the rank-capped
    /// enumeration, so the kept prefix is the low-energy one. Empty when
    /// the cap is infinite (the legacy enumeration ignores it).
    ranked_options: Vec<Vec<usize>>,
    /// Per job: minimum full-execution energy over its feasible points.
    min_energy: Vec<f64>,
    /// Per job: minimum full-execution time over its feasible points.
    min_time: Vec<f64>,
    memo: &'a mut HashMap<Key, MemoVal>,
    /// Keys loaded from a persisted cache (warm-start accounting).
    warm: &'a HashSet<Key>,
    /// Work units spent so far this activation (state expansions +
    /// enumeration steps) — the deterministic quantity the budget caps.
    work: u64,
    limit: Option<u64>,
    /// Per-state candidate cap (`usize::MAX` = exhaustive enumeration).
    rank_cap: usize,
    /// Whether the result may be approximate: the budget truncated the
    /// search, the rank cap dropped candidates, or an `Anytime`
    /// (upper-bound) memo entry was consumed.
    approximate: bool,
    /// Whether the *work budget* specifically ran out this activation
    /// (monotone; drives the `truncation` journal event, which must not
    /// fire for mere rank-cap taint — that has its own `rank_pruned`
    /// signal).
    budget_truncated: bool,
    /// Memo lookups this activation that returned a conclusive entry
    /// (exact / infeasible / pruning bound).
    memo_hits: u64,
    /// States expanded after an inconclusive lookup.
    memo_misses: u64,
    /// Candidates dropped by the rank cap this activation.
    rank_pruned: u64,
    /// Conclusive hits served from disk-loaded (warm) entries.
    warm_hits: u64,
}

impl SearchCtx<'_> {
    /// Returns `true` (and marks the search approximate) once the work
    /// budget is exhausted.
    fn out_of_budget(&mut self) -> bool {
        if self.limit.is_some_and(|l| self.work >= l) {
            self.approximate = true;
            self.budget_truncated = true;
            true
        } else {
            false
        }
    }
}

impl ExMem {
    /// Creates an EX-MEM scheduler (incumbent-seeded, memo-reusing,
    /// unbounded by default — the exact reference configuration).
    pub fn new() -> Self {
        ExMem {
            seed_with_mdf: true,
            reuse_memo: true,
            budget: SearchBudget::unbounded(),
            memo_cap: MEMO_CAP,
            cache: MappingCache::new(),
            nodes_explored: 0,
            degraded: false,
            last_evicted: 0,
            last_rank_pruned: 0,
            last_warm_hits: 0,
        }
    }

    /// Installs a (typically disk-loaded) [`MappingCache`] so this
    /// instance warm-starts from its proofs. Loaded entries are *not*
    /// trusted blindly: at every activation the content-based signatures
    /// are revalidated against the current jobs' applications and
    /// deadlines, and any mismatch clears the table before a single hit
    /// is served.
    #[must_use]
    pub fn with_cache(mut self, cache: MappingCache) -> Self {
        self.cache = cache;
        self
    }

    /// The cross-activation mapping cache (save it with
    /// [`MappingCache::save`] to warm-start a later run).
    pub fn cache(&self) -> &MappingCache {
        &self.cache
    }

    /// Disables MDF incumbent seeding (pure exhaustive search with
    /// memoization — slower, same result; used by ablation benches).
    /// Without the seed there is also no fallback schedule when a bounded
    /// budget expires empty-handed.
    #[must_use]
    pub fn without_seed(mut self) -> Self {
        self.seed_with_mdf = false;
        self
    }

    /// Disables memo reuse across activations: the table is cleared at
    /// every [`schedule`](Scheduler::schedule) call, reproducing the
    /// pre-reuse per-activation search exactly. Used by the equivalence
    /// tests that pin memo reuse as behaviour-preserving.
    #[must_use]
    pub fn without_memo_reuse(mut self) -> Self {
        self.reuse_memo = false;
        self
    }

    /// Caps this instance's search at `limit` work units per activation
    /// (composed with the context budget via [`SearchBudget::tightest`]).
    #[must_use]
    pub fn with_node_budget(self, limit: u64) -> Self {
        self.with_budget(SearchBudget::nodes(limit))
    }

    /// The default memo-size cap (see `MEMO_CAP`), exposed so the tune
    /// search can anchor its candidate grid on the shipped value.
    pub const DEFAULT_MEMO_CAP: usize = MEMO_CAP;

    /// Sets this instance's own [`SearchBudget`].
    #[must_use]
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the memo-size cap beyond which bounded eviction runs
    /// (default `1 << 20` entries). Used by memory-pressure tests and by
    /// deployments trading reuse for footprint.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_memo_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "memo cap must be at least 1");
        self.memo_cap = cap;
        self
    }

    /// Search work units spent by the most recent
    /// [`schedule`](Scheduler::schedule) call.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes_explored
    }

    /// Whether the most recent call was truncated by its budget (the
    /// returned schedule — if any — is best-found-so-far or the MDF
    /// fallback, not a proven optimum).
    pub fn last_degraded(&self) -> bool {
        self.degraded
    }

    /// Memoized states currently retained for reuse across activations.
    pub fn memo_len(&self) -> usize {
        self.cache.len()
    }

    /// Candidates dropped by the rank cap during the most recent
    /// [`schedule`](Scheduler::schedule) call.
    pub fn last_rank_pruned(&self) -> u64 {
        self.last_rank_pruned
    }

    /// Conclusive memo hits served from disk-loaded (warm) cache entries
    /// during the most recent [`schedule`](Scheduler::schedule) call.
    pub fn last_warm_hits(&self) -> u64 {
        self.last_warm_hits
    }

    /// Clears the memo unless every job's identity matches the signature
    /// it was memoized under (same application name and operating-point
    /// content, same deadline). JobIds never recur with different
    /// parameters within one runtime-manager run, so a mismatch means
    /// this instance crossed into an unrelated job population — or was
    /// warm-started from a cache recorded against a different
    /// application library.
    fn guard_signatures(&mut self, jobs: &[Job]) {
        let mismatch = jobs.iter().any(|job| {
            self.cache
                .signatures
                .get(&job.id().0)
                .is_some_and(|sig| !sig.matches(job))
        });
        if mismatch {
            self.cache.clear();
        } else {
            self.enforce_memo_cap();
        }
        for job in jobs {
            // Matching signatures are kept as-is (the common warm case),
            // so steady-state activations never re-allocate name strings.
            self.cache
                .signatures
                .entry(job.id().0)
                .or_insert_with(|| crate::cache::JobSig::of(job));
        }
    }

    /// Bounded eviction at the memo cap. The old behaviour — wiping the
    /// *entire* table at a cliff — threw away every exact optimum and
    /// infeasibility proof along with the cheap entries; instead the
    /// refinable classes are dropped first (`Anytime` upper bounds, which
    /// a later exhaustive pass re-derives anyway, then incumbent-relative
    /// `Bound`s), and the proofs survive. Eviction removes whole classes,
    /// never individual entries, so it is independent of the hash map's
    /// (randomized) iteration order and budgeted runs stay deterministic.
    /// Only when the proofs alone still exceed the cap is the table
    /// cleared outright.
    fn enforce_memo_cap(&mut self) {
        let before = self.cache.memo.len();
        if before <= self.memo_cap {
            return;
        }
        self.cache
            .memo
            .retain(|_, v| matches!(v, MemoVal::Exact { .. } | MemoVal::Infeasible));
        if self.cache.memo.len() > self.memo_cap {
            self.cache.clear();
            self.last_evicted += before;
            return;
        }
        #[cfg(debug_assertions)]
        if let Some(msg) =
            amrm_metrics::invariant::cap_exceeded(self.cache.memo.len(), Some(self.memo_cap))
        {
            panic!("EX-MEM memo {msg}");
        }
        self.last_evicted += before - self.cache.memo.len();
        // The signature map guards the memo and must not outgrow it: on
        // a long stream of fresh job ids the mismatch clear never fires,
        // so eviction time is when stale ids are shed. Keep only the
        // signatures some surviving memo key still relies on (dropping a
        // referenced one would disarm the validity guard).
        let live: HashSet<u64> = self
            .cache
            .memo
            .keys()
            .flat_map(|(_, state)| state.iter().map(|&(id, _)| id))
            .collect();
        self.cache.signatures.retain(|id, _| live.contains(id));
        let memo = &self.cache.memo;
        self.cache.warm.retain(|key| memo.contains_key(key));
    }
}

impl Default for ExMem {
    /// Same as [`ExMem::new`] — the exact reference configuration.
    fn default() -> Self {
        ExMem::new()
    }
}

impl Scheduler for ExMem {
    fn name(&self) -> &str {
        "EX-MEM"
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        let now = ctx.now;
        if jobs.is_empty() {
            return Some(Schedule::new());
        }
        self.last_evicted = 0;
        if self.reuse_memo {
            self.guard_signatures(jobs.jobs());
        } else {
            self.cache.clear();
        }

        let job_slice = jobs.jobs();
        let mut options = Vec::with_capacity(job_slice.len());
        let mut min_energy = Vec::with_capacity(job_slice.len());
        let mut min_time = Vec::with_capacity(job_slice.len());
        for job in job_slice {
            let opts: Vec<usize> = (0..job.app().num_points())
                .filter(|&j| job.point(j).resources().fits_within(platform.counts()))
                .collect();
            if opts.is_empty() {
                return None;
            }
            min_energy.push(
                opts.iter()
                    .map(|&j| job.point(j).energy())
                    .fold(f64::INFINITY, f64::min),
            );
            min_time.push(
                opts.iter()
                    .map(|&j| job.point(j).time())
                    .fold(f64::INFINITY, f64::min),
            );
            options.push(opts);
        }

        // Incumbent: MDF's energy is an upper bound on the optimum, and
        // its schedule is the fallback when a bounded budget expires with
        // nothing feasible found.
        let (incumbent, seed_schedule) = if self.seed_with_mdf {
            match MmkpMdf::new().schedule(jobs, platform, ctx) {
                Some(s) => (s.energy(jobs) + 1e-7, Some(s)),
                None => (f64::INFINITY, None),
            }
        } else {
            (f64::INFINITY, None)
        };

        let effective = self.budget.tightest(ctx.budget);
        let rank_cap = effective.rank_cap().unwrap_or(usize::MAX);
        // Under a finite cap the enumeration runs cheapest-energy-first,
        // so the generated (and therefore kept) prefix is the low-energy
        // one; uncapped searches keep the legacy point order verbatim.
        let ranked_options = if rank_cap == usize::MAX {
            Vec::new()
        } else {
            options
                .iter()
                .enumerate()
                .map(|(i, opts)| {
                    let mut by_energy = opts.clone();
                    by_energy.sort_by(|&a, &b| {
                        job_slice[i]
                            .point(a)
                            .energy()
                            .total_cmp(&job_slice[i].point(b).energy())
                            .then(a.cmp(&b))
                    });
                    by_energy
                })
                .collect()
        };

        let mut search = SearchCtx {
            jobs: job_slice,
            platform,
            options,
            ranked_options,
            min_energy,
            min_time,
            memo: &mut self.cache.memo,
            warm: &self.cache.warm,
            work: 0,
            limit: effective.node_limit(),
            rank_cap,
            approximate: false,
            budget_truncated: false,
            memo_hits: 0,
            memo_misses: 0,
            rank_pruned: 0,
            warm_hits: 0,
        };

        let state: Vec<(usize, f64)> = (0..job_slice.len())
            .map(|i| (i, job_slice[i].remaining()))
            .collect();
        let result = solve(&mut search, &state, now, incumbent);
        // Budget invariant: `out_of_budget` checks before every spend,
        // so the work counter may hit the limit but never pass it.
        #[cfg(debug_assertions)]
        if let Some(msg) = amrm_metrics::invariant::budget_overdraw(search.work, search.limit) {
            panic!("EX-MEM {msg}");
        }
        let approximate = search.approximate;
        let budget_truncated = search.budget_truncated;
        let (hits, misses) = (search.memo_hits, search.memo_misses);
        self.nodes_explored = search.work;
        self.degraded = approximate;
        self.last_rank_pruned = search.rank_pruned;
        self.last_warm_hits = search.warm_hits;

        // One aggregate event per activation, never per lookup: the memo
        // is consulted once per expanded state, so per-hit emission would
        // dominate the search itself.
        if ctx.trace.is_enabled() {
            if hits > 0 {
                ctx.trace.emit(
                    JournalEvent::at(now, EventKind::MemoHit)
                        .detail(hits.min(u64::from(u32::MAX)) as u32)
                        .value(self.cache.len() as f64),
                );
            }
            if misses > 0 {
                ctx.trace.emit(
                    JournalEvent::at(now, EventKind::MemoMiss)
                        .detail(misses.min(u64::from(u32::MAX)) as u32),
                );
            }
            if budget_truncated {
                ctx.trace.emit(
                    JournalEvent::at(now, EventKind::Truncation)
                        .value(self.nodes_explored as f64)
                        .aux(effective.node_limit().unwrap_or(0) as f64),
                );
            }
            if self.last_evicted > 0 {
                ctx.trace.emit(
                    JournalEvent::at(now, EventKind::MemoEvict)
                        .detail(self.last_evicted.min(u32::MAX as usize) as u32),
                );
            }
            if self.last_rank_pruned > 0 {
                ctx.trace.emit(
                    JournalEvent::at(now, EventKind::RankPrune)
                        .detail(self.last_rank_pruned.min(u64::from(u32::MAX)) as u32)
                        .value(rank_cap as f64),
                );
            }
            if self.last_warm_hits > 0 {
                ctx.trace.emit(
                    JournalEvent::at(now, EventKind::CacheWarmHit)
                        .detail(self.last_warm_hits.min(u64::from(u32::MAX)) as u32)
                        .value(self.cache.warm_len() as f64),
                );
            }
        }

        let schedule = match result {
            Some(_) => reconstruct(job_slice, &self.cache.memo, state, now).or(seed_schedule),
            // A truncated search that found nothing degrades to the MDF
            // incumbent; an exhaustive failure is a genuine rejection.
            None if approximate => seed_schedule,
            None => None,
        }?;
        debug_assert!(schedule.validate(jobs, platform, now).is_ok());
        Some(schedule)
    }
}

fn key_of(jobs: &[Job], state: &[(usize, f64)], t: f64) -> Key {
    (
        (t / KEY_QUANTUM).round() as u64,
        state
            .iter()
            .map(|&(i, rho)| (jobs[i].id().0, (rho / KEY_QUANTUM).round() as u64))
            .collect(),
    )
}

/// Admissible lower bound on the energy needed to finish `state`.
fn lower_bound(ctx: &SearchCtx<'_>, state: &[(usize, f64)]) -> f64 {
    state.iter().map(|&(i, rho)| ctx.min_energy[i] * rho).sum()
}

/// Returns `false` if some job can no longer meet its deadline even on its
/// fastest point with exclusive resources (admissible feasibility cut).
fn viable(ctx: &SearchCtx<'_>, state: &[(usize, f64)], t: f64) -> bool {
    state
        .iter()
        .all(|&(i, rho)| t + ctx.min_time[i] * rho <= ctx.jobs[i].deadline() + EPS)
}

/// One enumerated first-segment candidate.
struct Candidate {
    choice: Vec<Option<usize>>,
    seg_energy: f64,
    next_state: Vec<(usize, f64)>,
    next_t: f64,
    bound: f64,
}

/// Minimum energy to finish `state` from time `t`, if it is `< incumbent`.
/// Exact when the search ran to completion; an upper bound when the work
/// budget truncated it (`ctx.approximate`). Memoizes exact values and
/// failure bounds only for untruncated subtrees, and feasible-but-
/// unproven values as [`MemoVal::Anytime`].
fn solve(ctx: &mut SearchCtx<'_>, state: &[(usize, f64)], t: f64, incumbent: f64) -> Option<f64> {
    if state.is_empty() {
        return if incumbent > 0.0 { Some(0.0) } else { None };
    }
    if !viable(ctx, state, t) {
        return None;
    }
    if lower_bound(ctx, state) >= incumbent {
        return None;
    }

    let key = key_of(ctx.jobs, state, t);
    let mut anytime_hit: Option<f64> = None;
    match ctx.memo.get(&key) {
        Some(MemoVal::Exact { energy, .. }) => {
            amrm_metrics::instrument::record_memo_hit();
            ctx.memo_hits += 1;
            if !ctx.warm.is_empty() && ctx.warm.contains(&key) {
                ctx.warm_hits += 1;
            }
            return if *energy < incumbent {
                Some(*energy)
            } else {
                None
            };
        }
        Some(MemoVal::Infeasible) => {
            amrm_metrics::instrument::record_memo_hit();
            ctx.memo_hits += 1;
            if !ctx.warm.is_empty() && ctx.warm.contains(&key) {
                ctx.warm_hits += 1;
            }
            return None;
        }
        Some(MemoVal::Bound { at_least }) if incumbent <= *at_least + EPS => {
            amrm_metrics::instrument::record_memo_hit();
            ctx.memo_hits += 1;
            return None;
        }
        Some(MemoVal::Anytime { energy, .. }) => anytime_hit = Some(*energy),
        _ => {}
    }

    if ctx.out_of_budget() {
        // No work left: fall back to a previously found feasible
        // completion of this state, if one beats the incumbent.
        return match anytime_hit {
            Some(energy) if energy < incumbent => Some(energy),
            _ => None,
        };
    }
    ctx.work += 1;
    ctx.memo_misses += 1;

    // Track approximation per subtree so untruncated sibling states still
    // earn exact memo entries.
    let approx_before = ctx.approximate;
    ctx.approximate = false;

    // Enumerate joint first-segment assignments: all of them when the
    // rank cap is infinite (the legacy exhaustive order, bit-identical),
    // otherwise a cheapest-energy-first generation stopped at a small
    // multiple of the cap.
    let mut candidates = Vec::new();
    if ctx.rank_cap == usize::MAX {
        enumerate(
            ctx,
            state,
            t,
            0,
            &mut vec![None; state.len()],
            &ResourceVec::zeros(ctx.platform.num_types()),
            &mut candidates,
        );
    } else {
        let gen_cap = ctx.rank_cap.saturating_mul(RANK_OVERSAMPLE).max(1);
        enumerate_ranked(
            ctx,
            state,
            t,
            0,
            &mut vec![None; state.len()],
            &ResourceVec::zeros(ctx.platform.num_types()),
            &mut candidates,
            gen_cap,
        );
        if candidates.len() >= gen_cap {
            // The generation cap may have cut the space short; without
            // proof of completeness the subtree is approximate (the
            // rank-cap truncation below will usually also fire).
            ctx.approximate = true;
        }
    }
    // Best-first exploration makes the local branch-and-bound effective.
    // The sort is stable, so ties keep generation order and capped runs
    // stay deterministic.
    candidates.sort_by(|a, b| a.bound.total_cmp(&b.bound));
    if candidates.len() > ctx.rank_cap {
        // Capped ranking: only the top-N cheapest lower bounds survive
        // full recursive evaluation. Dropping candidates taints the
        // subtree exactly like budget truncation — the result memoizes
        // as an `Anytime` upper bound, never as a proof.
        let dropped = (candidates.len() - ctx.rank_cap) as u64;
        candidates.truncate(ctx.rank_cap);
        ctx.rank_pruned += dropped;
        ctx.approximate = true;
    }

    let mut local_best = incumbent;
    let mut best_choice: Option<Vec<Option<usize>>> = None;
    let mut pruned = false;
    for cand in candidates {
        if cand.bound >= local_best {
            pruned = true;
            continue;
        }
        if let Some(sub) = solve(
            ctx,
            &cand.next_state,
            cand.next_t,
            local_best - cand.seg_energy,
        ) {
            let total = cand.seg_energy + sub;
            if total < local_best {
                local_best = total;
                best_choice = Some(cand.choice);
            }
        }
    }

    let subtree_approx = ctx.approximate;
    ctx.approximate = subtree_approx || approx_before;

    match best_choice {
        Some(choice) => {
            if subtree_approx {
                // Feasible but unproven: keep the better of old and new.
                let keep_existing = matches!(
                    ctx.memo.get(&key),
                    Some(MemoVal::Anytime { energy, .. }) if *energy <= local_best
                );
                if !keep_existing {
                    ctx.memo.insert(
                        key,
                        MemoVal::Anytime {
                            energy: local_best,
                            choice,
                        },
                    );
                }
            } else {
                ctx.memo.insert(
                    key,
                    MemoVal::Exact {
                        energy: local_best,
                        choice,
                    },
                );
            }
            Some(local_best)
        }
        None if subtree_approx => {
            // The truncated search found nothing new; a previously found
            // completion still stands if it beats the incumbent. Never
            // record a failure proof for a truncated subtree.
            match anytime_hit {
                Some(energy) if energy < incumbent => Some(energy),
                _ => None,
            }
        }
        None => {
            // Exhaustive failure — but never overwrite a known feasible
            // completion (from an earlier budgeted activation) with a
            // bound that lacks its reconstruction choice.
            if anytime_hit.is_none() {
                let val = if pruned || incumbent.is_finite() {
                    MemoVal::Bound {
                        at_least: incumbent,
                    }
                } else {
                    MemoVal::Infeasible
                };
                ctx.memo.insert(key, val);
            }
            None
        }
    }
}

/// Depth-first enumeration of per-job choices (run a feasible point or
/// suspend), with component-wise resource pruning; complete assignments
/// with at least one running job become [`Candidate`]s. Each recursion
/// step costs one budget work unit — with many concurrent jobs the joint
/// assignment space is itself exponential, so a truncated enumeration
/// (partial candidate list) is exactly what the anytime mode degrades to.
fn enumerate(
    ctx: &mut SearchCtx<'_>,
    state: &[(usize, f64)],
    t: f64,
    depth: usize,
    choice: &mut Vec<Option<usize>>,
    used: &ResourceVec,
    out: &mut Vec<Candidate>,
) {
    if ctx.out_of_budget() {
        return;
    }
    ctx.work += 1;
    if depth == state.len() {
        push_candidate(ctx, state, t, choice, out);
        return;
    }
    let (ji, _) = state[depth];
    // Option A: suspend this job in the first segment.
    choice[depth] = None;
    enumerate(ctx, state, t, depth + 1, choice, used, out);
    // Option B: run one of its feasible points.
    for idx in 0..ctx.options[ji].len() {
        let cfg = ctx.options[ji][idx];
        let demand = used + ctx.jobs[ji].point(cfg).resources();
        if !demand.fits_within(ctx.platform.counts()) {
            continue;
        }
        choice[depth] = Some(cfg);
        enumerate(ctx, state, t, depth + 1, choice, &demand, out);
    }
    choice[depth] = None;
}

/// The rank-capped twin of [`enumerate`]: per-job points are tried
/// cheapest-full-execution-energy-first and *before* the suspend option,
/// and generation stops once `gen_cap` candidates exist — so the kept
/// prefix is the low-energy corner of the joint space rather than an
/// arbitrary one. Work accounting matches the legacy enumeration (one
/// unit per recursion step) and the budget is honoured identically.
#[allow(clippy::too_many_arguments)]
fn enumerate_ranked(
    ctx: &mut SearchCtx<'_>,
    state: &[(usize, f64)],
    t: f64,
    depth: usize,
    choice: &mut Vec<Option<usize>>,
    used: &ResourceVec,
    out: &mut Vec<Candidate>,
    gen_cap: usize,
) {
    if out.len() >= gen_cap || ctx.out_of_budget() {
        return;
    }
    ctx.work += 1;
    if depth == state.len() {
        push_candidate(ctx, state, t, choice, out);
        return;
    }
    let (ji, _) = state[depth];
    // Run options first, cheapest energy first.
    for idx in 0..ctx.ranked_options[ji].len() {
        let cfg = ctx.ranked_options[ji][idx];
        let demand = used + ctx.jobs[ji].point(cfg).resources();
        if !demand.fits_within(ctx.platform.counts()) {
            continue;
        }
        choice[depth] = Some(cfg);
        enumerate_ranked(ctx, state, t, depth + 1, choice, &demand, out, gen_cap);
        if out.len() >= gen_cap {
            choice[depth] = None;
            return;
        }
    }
    // Suspend last: an all-suspended assignment never advances time, so
    // deprioritizing suspension keeps the generated prefix productive.
    choice[depth] = None;
    enumerate_ranked(ctx, state, t, depth + 1, choice, used, out, gen_cap);
}

fn push_candidate(
    ctx: &SearchCtx<'_>,
    state: &[(usize, f64)],
    t: f64,
    choice: &[Option<usize>],
    out: &mut Vec<Candidate>,
) {
    // Segment is cut at the earliest completion among running jobs.
    let mut delta = f64::INFINITY;
    for (slot, &(ji, rho)) in state.iter().enumerate() {
        if let Some(cfg) = choice[slot] {
            delta = delta.min(ctx.jobs[ji].point(cfg).time() * rho);
        }
    }
    if !delta.is_finite() {
        return; // everybody suspended: time would not advance
    }

    let next_t = t + delta;
    let mut seg_energy = 0.0;
    let mut next_state = Vec::with_capacity(state.len());
    for (slot, &(ji, rho)) in state.iter().enumerate() {
        match choice[slot] {
            Some(cfg) => {
                let p = ctx.jobs[ji].point(cfg);
                seg_energy += p.energy() * delta / p.time();
                let rho2 = rho - delta / p.time();
                if rho2 > RHO_EPS {
                    next_state.push((ji, rho2));
                } else if next_t > ctx.jobs[ji].deadline() + EPS {
                    return; // completes past its deadline
                }
            }
            None => next_state.push((ji, rho)),
        }
    }
    if !viable(ctx, &next_state, next_t) {
        return;
    }
    let bound = seg_energy + lower_bound(ctx, &next_state);
    out.push(Candidate {
        choice: choice.to_vec(),
        seg_energy,
        next_state,
        next_t,
        bound,
    });
}

/// Rebuilds the schedule by replaying the memoized first-segment choices
/// from the root state. `Exact` entries trace the optimal path; `Anytime`
/// entries trace the best feasible path a truncated search recorded.
/// Returns `None` if the path breaks (a later exhaustive pass replaced an
/// anytime entry with a bound) — the caller then degrades to the MDF
/// fallback.
fn reconstruct(
    jobs: &[Job],
    memo: &HashMap<Key, MemoVal>,
    mut state: Vec<(usize, f64)>,
    mut t: f64,
) -> Option<Schedule> {
    let mut schedule = Schedule::new();
    while !state.is_empty() {
        let key = key_of(jobs, &state, t);
        let choice = match memo.get(&key) {
            Some(MemoVal::Exact { choice, .. }) | Some(MemoVal::Anytime { choice, .. }) => choice,
            _ => return None,
        };
        let mut delta = f64::INFINITY;
        for (slot, &(ji, rho)) in state.iter().enumerate() {
            if let Some(cfg) = choice[slot] {
                delta = delta.min(jobs[ji].point(cfg).time() * rho);
            }
        }
        let mut mappings = Vec::new();
        let mut next_state = Vec::new();
        for (slot, &(ji, rho)) in state.iter().enumerate() {
            match choice[slot] {
                Some(cfg) => {
                    mappings.push(JobMapping::new(jobs[ji].id(), cfg));
                    let rho2 = rho - delta / jobs[ji].point(cfg).time();
                    if rho2 > RHO_EPS {
                        next_state.push((ji, rho2));
                    }
                }
                None => next_state.push((ji, rho)),
            }
        }
        schedule.push(Segment::new(t, t + delta, mappings));
        state = next_state;
        t += delta;
    }
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::{Application, JobId, JobSet, OperatingPoint};
    use amrm_workload::scenarios;

    #[test]
    fn single_job_is_optimal() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        let platform = scenarios::platform();
        let schedule = ExMem::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        schedule.validate(&jobs, &platform, 0.0).unwrap();
        assert!((schedule.energy(&jobs) - 8.9).abs() < 1e-6);
    }

    #[test]
    fn fig1c_is_the_optimum_for_s1_at_t1() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = ExMem::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6);
    }

    #[test]
    fn s2_feasible_with_same_energy() {
        let jobs = scenarios::s2_jobs_at_t1();
        let platform = scenarios::platform();
        let schedule = ExMem::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6);
    }

    #[test]
    fn never_worse_than_mdf() {
        // EX-MEM is exact, so on any instance it must be ≤ MDF.
        let platform = scenarios::platform();
        for (d1, d2) in [(9.0, 5.0), (12.0, 6.0), (20.0, 8.0), (9.0, 4.0)] {
            let jobs = JobSet::new(vec![
                Job::new(JobId(1), scenarios::lambda1(), 0.0, d1, 1.0),
                Job::new(JobId(2), scenarios::lambda2(), 0.0, d2, 1.0),
            ]);
            let opt = ExMem::new().schedule_at(&jobs, &platform, 0.0);
            let heur = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0);
            if let Some(h) = &heur {
                let o = opt.as_ref().expect("EX-MEM must succeed when MDF does");
                assert!(
                    o.energy(&jobs) <= h.energy(&jobs) + 1e-6,
                    "EX-MEM {} > MDF {} for ({d1},{d2})",
                    o.energy(&jobs),
                    h.energy(&jobs)
                );
            }
        }
    }

    #[test]
    fn seeded_and_unseeded_agree() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let a = ExMem::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        let b = ExMem::new()
            .without_seed()
            .schedule_at(&jobs, &platform, 1.0)
            .unwrap();
        assert!((a.energy(&jobs) - b.energy(&jobs)).abs() < 1e-6);
    }

    #[test]
    fn infeasible_case_rejected() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            1.0,
            1.0,
        )]);
        assert!(ExMem::new()
            .schedule_at(&jobs, &scenarios::platform(), 0.0)
            .is_none());
    }

    #[test]
    fn finds_schedules_where_fixed_reasoning_fails() {
        // S2 at t = 1 (the fixed mapper rejects it — see fixed.rs tests).
        let jobs = scenarios::s2_jobs_at_t1();
        assert!(ExMem::new()
            .schedule_at(&jobs, &scenarios::platform(), 1.0)
            .is_some());
    }

    #[test]
    fn three_jobs_feasible_and_not_worse_than_mdf() {
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let opt = ExMem::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        opt.validate(&jobs, &platform, 0.0).unwrap();
        let heur = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        assert!(opt.energy(&jobs) <= heur.energy(&jobs) + 1e-6);
    }

    #[test]
    fn oversized_only_app_rejected() {
        let app = Application::shared(
            "fat",
            vec![OperatingPoint::new(
                amrm_platform::ResourceVec::from_slice(&[4, 0]),
                1.0,
                1.0,
            )],
        );
        let jobs = JobSet::new(vec![Job::new(JobId(1), app, 0.0, 10.0, 1.0)]);
        assert!(ExMem::new()
            .schedule_at(&jobs, &scenarios::platform(), 0.0)
            .is_none());
    }

    #[test]
    fn node_counter_reports_work() {
        let jobs = scenarios::s1_jobs_at_t1();
        let mut ex = ExMem::new();
        ex.schedule_at(&jobs, &scenarios::platform(), 1.0).unwrap();
        assert!(ex.nodes_explored() > 0);
        assert!(!ex.last_degraded());
        assert!(ex.memo_len() > 0);
    }

    #[test]
    fn warm_memo_answers_repeat_activations_cheaply() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let mut ex = ExMem::new();
        let cold = ex.schedule_at(&jobs, &platform, 1.0).unwrap();
        let cold_work = ex.nodes_explored();
        let warm = ex.schedule_at(&jobs, &platform, 1.0).unwrap();
        let warm_work = ex.nodes_explored();
        assert_eq!(cold, warm, "memo hit must reproduce the same schedule");
        assert!(
            warm_work < cold_work,
            "warm activation ({warm_work}) should cost less than cold ({cold_work})"
        );
    }

    #[test]
    fn signature_guard_clears_memo_across_unrelated_runs() {
        // Same JobId, different deadline: the memoized states are invalid
        // and must not leak into the second run.
        let platform = scenarios::platform();
        let mut ex = ExMem::new();
        let a = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        let first = ex.schedule_at(&a, &platform, 0.0).unwrap();
        assert!((first.energy(&a) - 8.9).abs() < 1e-6);
        let b = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            30.0,
            1.0,
        )]);
        let second = ex.schedule_at(&b, &platform, 0.0).unwrap();
        second.validate(&b, &platform, 0.0).unwrap();
        // With the loose deadline the cheapest point (1L, 11 J? — the
        // energy-minimal feasible point) may differ; the result must be
        // the true optimum for `b`, i.e. match a cold instance.
        let fresh = ExMem::new().schedule_at(&b, &platform, 0.0).unwrap();
        assert_eq!(
            second.energy(&b).to_bits(),
            fresh.energy(&b).to_bits(),
            "stale memo leaked across a signature change"
        );
    }

    #[test]
    fn memo_cap_crossing_keeps_exact_entries_reusable() {
        // Regression: crossing MEMO_CAP used to wipe the *whole* memo at
        // a cliff, throwing away every exact optimum along with the cheap
        // refinable entries. Bounded eviction must drop the Anytime/Bound
        // classes and keep the proofs, so a warm re-activation of an
        // already-proven state stays cheaper than its cold solve.
        let platform = scenarios::platform();
        let jobs_x = scenarios::s1_jobs_at_t1();

        // Probe: the exact-solve footprint and cost of X.
        let mut probe = ExMem::new();
        probe.schedule_at(&jobs_x, &platform, 1.0).unwrap();
        let exact_entries = probe.memo_len();
        let cold_work = probe.nodes_explored();
        assert!(exact_entries > 0);

        // Cap sized so X's proofs fit but any truncated follow-up search
        // pushes the table over it.
        let mut ex = ExMem::new().with_memo_cap(exact_entries + 2);
        let cold = ex.schedule_at(&jobs_x, &platform, 1.0).unwrap();
        assert_eq!(ex.memo_len(), exact_entries);

        // A budget-truncated activation over an unrelated job set (fresh
        // ids, so no signature mismatch) piles refinable entries on top.
        let jobs_y = JobSet::new(vec![
            Job::new(JobId(11), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(12), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(13), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let ctx = SchedulingContext::at(0.0).with_budget(SearchBudget::nodes(400));
        ex.schedule(&jobs_y, &platform, &ctx);
        assert!(
            ex.memo_len() > exact_entries + 2,
            "memo {} did not cross the cap; raise the probe budget",
            ex.memo_len()
        );

        // The next guarded activation evicts at the cap — X's exact
        // entries must survive and answer the warm solve cheaply.
        let warm = ex.schedule_at(&jobs_x, &platform, 1.0).unwrap();
        assert_eq!(cold, warm, "eviction changed the proven optimum");
        assert!(
            ex.nodes_explored() < cold_work,
            "warm work {} ≥ cold work {cold_work}: the exact entries were \
             evicted with the rest",
            ex.nodes_explored()
        );
        // Eviction also sheds signatures no surviving memo key relies on
        // — on fresh-id streams the signature map must not outgrow the
        // memo it guards. (Ids 1/2 were re-inserted for the warm call.)
        let live: std::collections::HashSet<u64> = ex
            .cache
            .memo
            .keys()
            .flat_map(|(_, state)| state.iter().map(|&(id, _)| id))
            .collect();
        assert!(
            ex.cache
                .signatures
                .keys()
                .all(|id| live.contains(id) || *id == 1 || *id == 2),
            "orphaned signatures survived the cap eviction"
        );
    }

    #[test]
    fn proof_overflow_still_clears_the_table() {
        // When the proofs alone exceed the cap there is nothing selective
        // left to do — the table clears outright and the search stays
        // correct (cold cost, same optimum).
        let platform = scenarios::platform();
        let jobs = scenarios::s1_jobs_at_t1();
        let mut ex = ExMem::new().with_memo_cap(1);
        let first = ex.schedule_at(&jobs, &platform, 1.0).unwrap();
        let cold_work = ex.nodes_explored();
        let second = ex.schedule_at(&jobs, &platform, 1.0).unwrap();
        assert_eq!(first, second);
        assert_eq!(ex.nodes_explored(), cold_work, "cap 1 cannot retain state");
    }

    #[test]
    #[should_panic(expected = "memo cap")]
    fn zero_memo_cap_panics() {
        let _ = ExMem::new().with_memo_cap(0);
    }

    #[test]
    fn tiny_budget_degrades_to_the_mdf_fallback() {
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let mdf = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        let ctx = SchedulingContext::at(0.0).with_budget(SearchBudget::nodes(1));
        let mut ex = ExMem::new();
        let degraded = ex.schedule(&jobs, &platform, &ctx).unwrap();
        assert!(ex.last_degraded());
        degraded.validate(&jobs, &platform, 0.0).unwrap();
        assert_eq!(
            degraded.energy(&jobs).to_bits(),
            mdf.energy(&jobs).to_bits(),
            "a one-unit budget must return exactly MDF's schedule"
        );
    }

    #[test]
    fn budgeted_result_is_feasible_and_never_worse_than_mdf() {
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let mdf = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        for limit in [1u64, 10, 100, 1_000, 100_000] {
            let ctx = SchedulingContext::at(0.0).with_budget(SearchBudget::nodes(limit));
            let s = ExMem::new().schedule(&jobs, &platform, &ctx).unwrap();
            s.validate(&jobs, &platform, 0.0).unwrap();
            assert!(
                s.energy(&jobs) <= mdf.energy(&jobs) + 1e-7,
                "budget {limit}: {} > MDF {}",
                s.energy(&jobs),
                mdf.energy(&jobs)
            );
        }
    }

    #[test]
    fn budgeted_search_is_deterministic() {
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let ctx = SchedulingContext::at(0.0).with_budget(SearchBudget::nodes(500));
        let a = ExMem::new().schedule(&jobs, &platform, &ctx).unwrap();
        let b = ExMem::new().schedule(&jobs, &platform, &ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn max_rank_cap_is_the_legacy_enumeration() {
        // `usize::MAX` normalizes to no cap at the budget layer, so the
        // legacy exhaustive path runs verbatim: identical schedule AND
        // identical work accounting.
        let platform = scenarios::platform();
        let jobs = scenarios::s1_jobs_at_t1();
        let plain = SchedulingContext::at(1.0).with_budget(SearchBudget::nodes(50_000));
        let capped = SchedulingContext::at(1.0)
            .with_budget(SearchBudget::nodes(50_000).with_rank_cap(usize::MAX));
        let mut a = ExMem::new();
        let mut b = ExMem::new();
        let sa = a.schedule(&jobs, &platform, &plain).unwrap();
        let sb = b.schedule(&jobs, &platform, &capped).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.nodes_explored(), b.nodes_explored());
    }

    #[test]
    fn finite_rank_cap_never_memoizes_exact() {
        // Soundness: a state solved under a finite cap that actually
        // dropped candidates is truncation-tainted — it must memoize as
        // `Anytime` (or not at all), never as an `Exact` optimum or an
        // `Infeasible`/`Bound` failure proof.
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let ctx =
            SchedulingContext::at(0.0).with_budget(SearchBudget::nodes(50_000).with_rank_cap(1));
        let mut ex = ExMem::new();
        let s = ex.schedule(&jobs, &platform, &ctx).unwrap();
        s.validate(&jobs, &platform, 0.0).unwrap();
        assert!(ex.last_rank_pruned() > 0, "cap 1 must drop candidates");
        assert!(ex.last_degraded(), "a pruning cap taints the activation");
        assert!(
            !ex.cache
                .memo
                .values()
                .any(|v| matches!(v, MemoVal::Exact { .. } | MemoVal::Infeasible)),
            "a capped activation that pruned must not record proofs"
        );
        assert_eq!(ex.cache().proof_count(), 0);
    }

    #[test]
    fn rank_capped_result_is_feasible_and_never_worse_than_mdf() {
        let platform = scenarios::platform();
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
            Job::new(JobId(2), scenarios::lambda2(), 0.0, 9.0, 1.0),
            Job::new(JobId(3), scenarios::lambda2(), 0.0, 16.0, 0.6),
        ]);
        let mdf = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        for cap in [1usize, 2, 4, 8, 24, 256] {
            let ctx = SchedulingContext::at(0.0)
                .with_budget(SearchBudget::nodes(50_000).with_rank_cap(cap));
            let s = ExMem::new().schedule(&jobs, &platform, &ctx).unwrap();
            s.validate(&jobs, &platform, 0.0).unwrap();
            assert!(
                s.energy(&jobs) <= mdf.energy(&jobs) + 1e-7,
                "cap {cap}: {} > MDF {}",
                s.energy(&jobs),
                mdf.energy(&jobs)
            );
        }
    }

    #[test]
    fn warm_cache_replays_the_cold_proofs() {
        let platform = scenarios::platform();
        let jobs = scenarios::s1_jobs_at_t1();

        let mut cold = ExMem::new();
        let cold_schedule = cold.schedule_at(&jobs, &platform, 1.0).unwrap();
        let cold_work = cold.nodes_explored();
        assert_eq!(cold.last_warm_hits(), 0, "a cold run has no warm entries");

        // Roundtrip through the serialized form, as `repro --warm-cache`
        // does, then solve the same activation warm.
        let value = serde::Serialize::to_value(cold.cache());
        let loaded = <MappingCache as serde::Deserialize>::from_value(&value).unwrap();
        assert!(loaded.warm_len() > 0);
        let mut warm = ExMem::new().with_cache(loaded);
        let warm_schedule = warm.schedule_at(&jobs, &platform, 1.0).unwrap();
        assert_eq!(
            cold_schedule, warm_schedule,
            "warm replay must reproduce the cold schedule exactly"
        );
        assert!(warm.last_warm_hits() > 0, "the root hit must count as warm");
        assert!(
            warm.nodes_explored() < cold_work,
            "warm work {} should undercut cold work {cold_work}",
            warm.nodes_explored()
        );
    }

    #[test]
    fn warm_cache_from_a_different_library_is_revalidated_away() {
        // The bugfix satellite: signatures are content-based, so a cache
        // recorded against one application library must be cleared — not
        // trusted — when the points or deadlines differ, even though the
        // JobIds and app names collide.
        let platform = scenarios::platform();
        let jobs = scenarios::s1_jobs_at_t1();
        let mut cold = ExMem::new();
        cold.schedule_at(&jobs, &platform, 1.0).unwrap();
        let value = serde::Serialize::to_value(cold.cache());
        let loaded = <MappingCache as serde::Deserialize>::from_value(&value).unwrap();

        // Same ids, same app names would require an edited library to
        // collide; a moved deadline is the cheapest content change.
        let job_slice = jobs.jobs();
        let shifted = JobSet::new(
            job_slice
                .iter()
                .map(|j| {
                    Job::new(
                        j.id(),
                        j.app().clone(),
                        j.arrival(),
                        j.deadline() + 5.0,
                        j.remaining(),
                    )
                })
                .collect(),
        );
        let mut warm = ExMem::new().with_cache(loaded);
        let s = warm.schedule_at(&shifted, &platform, 1.0).unwrap();
        assert_eq!(warm.last_warm_hits(), 0, "stale warm entries were served");
        let fresh = ExMem::new().schedule_at(&shifted, &platform, 1.0).unwrap();
        assert_eq!(
            s.energy(&shifted).to_bits(),
            fresh.energy(&shifted).to_bits(),
            "the revalidated run must match a cold instance bit for bit"
        );
    }

    #[test]
    fn huge_budget_is_exact() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let unbounded = ExMem::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        let ctx = SchedulingContext::at(1.0).with_budget(SearchBudget::nodes(u64::MAX));
        let mut budgeted = ExMem::new();
        let capped = budgeted.schedule(&jobs, &platform, &ctx).unwrap();
        assert!(!budgeted.last_degraded());
        assert_eq!(unbounded, capped);
    }
}
