//! MMKP-LR: the Lagrangian-relaxation baseline (Wildermann et al.,
//! ISORC'15, as adapted by the paper).
//!
//! For every mapping segment the algorithm (a) runs a subgradient method
//! (bounded at 100 iterations, as in the paper) on the Lagrangian relaxation
//! of the per-segment MMKP — multipliers `u ≥ 0` price the per-type core
//! constraint — then (b) greedily maps jobs in increasing order of their
//! minimum Lagrangian configuration cost `ξ·ρ + u·θ`. A configuration is
//! accepted if it fits the free resources and passes the *optimistic*
//! deadline check: the job finishes with it before its deadline, or could
//! still finish if reconfigured to its fastest point at the end of the
//! segment. The segment is cut at the earliest completion and the process
//! repeats — the analysis scope is a single segment, which is exactly the
//! limitation MMKP-MDF's full-horizon containers remove.

use amrm_core::{Scheduler, SchedulingContext};
use amrm_model::{Job, JobMapping, JobSet, Schedule, Segment};
use amrm_platform::{Platform, ResourceVec, EPS};

/// Remaining ratio below which a job counts as finished.
const RHO_EPS: f64 = 1e-9;

/// The MMKP-LR scheduler.
///
/// # Examples
///
/// ```
/// use amrm_baselines::MmkpLr;
/// use amrm_core::{Scheduler, SchedulingContext};
/// use amrm_workload::scenarios;
///
/// let jobs = scenarios::s1_jobs_at_t1();
/// let schedule = MmkpLr::new()
///     .schedule_at(&jobs, &scenarios::platform(), 1.0)
///     .expect("feasible");
/// schedule.validate(&jobs, &scenarios::platform(), 1.0).unwrap();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MmkpLr {
    max_iterations: usize,
}

impl Default for MmkpLr {
    fn default() -> Self {
        MmkpLr::new()
    }
}

impl MmkpLr {
    /// Creates an MMKP-LR scheduler with the paper's subgradient budget of
    /// 100 iterations.
    pub fn new() -> Self {
        MmkpLr {
            max_iterations: 100,
        }
    }

    /// Overrides the subgradient iteration budget (ablation hook).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn with_iterations(iterations: usize) -> Self {
        assert!(iterations > 0, "at least one subgradient iteration");
        MmkpLr {
            max_iterations: iterations,
        }
    }
}

/// Per-job state while building segments.
#[derive(Debug, Clone)]
struct Pending {
    idx: usize,
    rho: f64,
}

impl Scheduler for MmkpLr {
    fn name(&self) -> &str {
        "MMKP-LR"
    }

    fn schedule(
        &mut self,
        jobs: &JobSet,
        platform: &Platform,
        ctx: &SchedulingContext,
    ) -> Option<Schedule> {
        let now = ctx.now;
        if jobs.is_empty() {
            return Some(Schedule::new());
        }
        let job_slice = jobs.jobs();

        // Static per-job data: feasible points and the fastest one.
        let mut options: Vec<Vec<usize>> = Vec::with_capacity(job_slice.len());
        let mut fastest: Vec<f64> = Vec::with_capacity(job_slice.len());
        for job in job_slice {
            let opts: Vec<usize> = (0..job.app().num_points())
                .filter(|&j| job.point(j).resources().fits_within(platform.counts()))
                .collect();
            if opts.is_empty() {
                return None;
            }
            fastest.push(
                opts.iter()
                    .map(|&j| job.point(j).time())
                    .fold(f64::INFINITY, f64::min),
            );
            options.push(opts);
        }

        let mut pending: Vec<Pending> = (0..job_slice.len())
            .map(|idx| Pending {
                idx,
                rho: job_slice[idx].remaining(),
            })
            .collect();
        let mut t = now;
        let mut schedule = Schedule::new();

        while !pending.is_empty() {
            // Viability: every remaining job must still be salvageable.
            if pending
                .iter()
                .any(|p| t + fastest[p.idx] * p.rho > job_slice[p.idx].deadline() + EPS)
            {
                return None;
            }

            // (a) Subgradient on the per-segment relaxation.
            let u = self.subgradient(job_slice, &pending, &options, platform, t, &fastest);

            // (b) Greedy mapping in increasing order of minimum cost.
            let mut order: Vec<usize> = (0..pending.len()).collect();
            let min_cost = |p: &Pending| -> f64 {
                options[p.idx]
                    .iter()
                    .map(|&j| lagr_cost(&job_slice[p.idx], j, p.rho, &u))
                    .fold(f64::INFINITY, f64::min)
            };
            order.sort_by(|&a, &b| {
                min_cost(&pending[a])
                    .total_cmp(&min_cost(&pending[b]))
                    .then(a.cmp(&b))
            });

            let mut free = platform.counts().clone();
            let mut chosen: Vec<Option<usize>> = vec![None; pending.len()];
            // Earliest completion among mapped jobs = tentative segment end.
            let mut tentative_end = f64::INFINITY;
            for &pi in &order {
                let p = &pending[pi];
                let job = &job_slice[p.idx];
                let mut sorted = options[p.idx].clone();
                sorted.sort_by(|&a, &b| {
                    lagr_cost(job, a, p.rho, &u).total_cmp(&lagr_cost(job, b, p.rho, &u))
                });
                for j in sorted {
                    let point = job.point(j);
                    if !point.resources().fits_within(&free) {
                        continue;
                    }
                    let completion = t + point.time() * p.rho;
                    let seg_end = tentative_end.min(completion);
                    // Optimistic deadline check: finish with this point, or
                    // reconfigure to the fastest point at the segment end.
                    let ok = if completion <= job.deadline() + EPS {
                        true
                    } else {
                        let progressed = (seg_end - t) / point.time();
                        let rho_rest = (p.rho - progressed).max(0.0);
                        seg_end + fastest[p.idx] * rho_rest <= job.deadline() + EPS
                    };
                    if ok {
                        free = &free - point.resources();
                        chosen[pi] = Some(j);
                        tentative_end = seg_end;
                        break;
                    }
                }
            }

            if !tentative_end.is_finite() {
                return None; // nothing could be mapped: no progress possible
            }

            // Build the segment up to the earliest completion.
            let delta = tentative_end - t;
            debug_assert!(delta > 0.0);
            let mut mappings = Vec::new();
            for (pi, c) in chosen.iter().enumerate() {
                if let Some(j) = c {
                    mappings.push(JobMapping::new(job_slice[pending[pi].idx].id(), *j));
                }
            }
            schedule.push(Segment::new(t, tentative_end, mappings));

            // Advance progress, retire finished jobs.
            let mut next = Vec::with_capacity(pending.len());
            for (pi, p) in pending.iter().enumerate() {
                let rho2 = match chosen[pi] {
                    Some(j) => p.rho - delta / job_slice[p.idx].point(j).time(),
                    None => p.rho,
                };
                if rho2 > RHO_EPS {
                    next.push(Pending {
                        idx: p.idx,
                        rho: rho2,
                    });
                } else if tentative_end > job_slice[p.idx].deadline() + EPS {
                    return None;
                }
            }
            pending = next;
            t = tentative_end;
        }
        Some(schedule)
    }
}

/// Lagrangian cost of point `j` for a job with remaining ratio `rho`.
fn lagr_cost(job: &Job, j: usize, rho: f64, u: &[f64]) -> f64 {
    let p = job.point(j);
    let penalty: f64 = p
        .resources()
        .iter()
        .zip(u)
        .map(|(theta, ui)| f64::from(theta) * ui)
        .sum();
    p.energy() * rho + penalty
}

impl MmkpLr {
    /// Runs the subgradient method on the relaxed per-segment MMKP and
    /// returns the final multipliers.
    fn subgradient(
        &self,
        jobs: &[Job],
        pending: &[Pending],
        options: &[Vec<usize>],
        platform: &Platform,
        t: f64,
        fastest: &[f64],
    ) -> Vec<f64> {
        let m = platform.num_types();
        let mut u = vec![0.0; m];
        // Scale: average remaining energy per core, so steps are unit-sane.
        let scale = pending
            .iter()
            .map(|p| {
                options[p.idx]
                    .iter()
                    .map(|&j| jobs[p.idx].point(j).energy() * p.rho)
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            .max(1e-6)
            / f64::from(platform.total_cores());

        for iter in 0..self.max_iterations {
            // Relaxed per-group argmin with current prices.
            let mut demand = ResourceVec::zeros(m);
            for p in pending {
                let job = &jobs[p.idx];
                let best = options[p.idx]
                    .iter()
                    .copied()
                    .filter(|&j| {
                        // Deadline-plausible points only.
                        let completion = t + job.point(j).time() * p.rho;
                        completion <= job.deadline() + EPS
                            || t + fastest[p.idx] * p.rho <= job.deadline() + EPS
                    })
                    .min_by(|&a, &b| {
                        lagr_cost(job, a, p.rho, &u).total_cmp(&lagr_cost(job, b, p.rho, &u))
                    });
                if let Some(j) = best {
                    demand += job.point(j).resources();
                }
            }
            // Subgradient g = demand − Θ. The paper bounds the method at
            // 100 iterations and we always run the full budget (a diminish-
            // ing step size needs the iterations to converge); this is also
            // what makes MMKP-LR an order of magnitude slower than MMKP-MDF
            // in Fig. 4.
            let step = scale / (iter as f64 + 1.0);
            for k in 0..m {
                let g = f64::from(demand[k]) - f64::from(platform.counts()[k]);
                u[k] = (u[k] + step * g).max(0.0);
            }
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_core::MmkpMdf;
    use amrm_model::{JobId, JobSet};
    use amrm_workload::scenarios;

    #[test]
    fn single_job_is_optimal() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            9.0,
            1.0,
        )]);
        let platform = scenarios::platform();
        let schedule = MmkpLr::new().schedule_at(&jobs, &platform, 0.0).unwrap();
        schedule.validate(&jobs, &platform, 0.0).unwrap();
        assert!((schedule.energy(&jobs) - 8.9).abs() < 1e-6);
    }

    #[test]
    fn s1_at_t1_feasible_but_not_better_than_mdf() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let lr = MmkpLr::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        lr.validate(&jobs, &platform, 1.0).unwrap();
        let mdf = MmkpMdf::new().schedule_at(&jobs, &platform, 1.0).unwrap();
        // The single-segment scope costs energy: LR must not beat MDF here.
        assert!(lr.energy(&jobs) >= mdf.energy(&jobs) - 1e-9);
    }

    #[test]
    fn impossible_deadline_rejected() {
        let jobs = JobSet::new(vec![Job::new(
            JobId(1),
            scenarios::lambda1(),
            0.0,
            1.0,
            1.0,
        )]);
        assert!(MmkpLr::new()
            .schedule_at(&jobs, &scenarios::platform(), 0.0)
            .is_none());
    }

    #[test]
    fn multi_job_schedules_are_valid() {
        let platform = scenarios::platform();
        for (d1, d2, d3) in [(20.0, 9.0, 15.0), (30.0, 12.0, 18.0)] {
            let jobs = JobSet::new(vec![
                Job::new(JobId(1), scenarios::lambda1(), 0.0, d1, 1.0),
                Job::new(JobId(2), scenarios::lambda2(), 0.0, d2, 1.0),
                Job::new(JobId(3), scenarios::lambda2(), 0.0, d3, 0.8),
            ]);
            if let Some(s) = MmkpLr::new().schedule_at(&jobs, &platform, 0.0) {
                s.validate(&jobs, &platform, 0.0).unwrap();
            }
        }
    }

    #[test]
    fn iteration_budget_is_configurable() {
        let jobs = scenarios::s1_jobs_at_t1();
        let platform = scenarios::platform();
        let a = MmkpLr::with_iterations(1).schedule_at(&jobs, &platform, 1.0);
        let b = MmkpLr::new().schedule_at(&jobs, &platform, 1.0);
        // Both must produce valid schedules (possibly different energy).
        for s in [a, b].into_iter().flatten() {
            s.validate(&jobs, &platform, 1.0).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one subgradient iteration")]
    fn zero_iterations_rejected() {
        let _ = MmkpLr::with_iterations(0);
    }

    #[test]
    fn empty_set_is_trivially_feasible() {
        let schedule = MmkpLr::new()
            .schedule_at(&JobSet::default(), &scenarios::platform(), 0.0)
            .unwrap();
        assert!(schedule.is_empty());
    }
}
